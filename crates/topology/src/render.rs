//! ASCII rendering of grid-embeddable topologies, in the style of the
//! paper's Figure 1/5 device diagrams.
//!
//! Johannesburg, rectangular grids, and lines all embed in a rectangular
//! lattice with every coupling either horizontal or vertical; the renderer
//! draws exactly the edges the [`Topology`] contains:
//!
//! ```text
//!   0 --  1 --  2 --  3 --  4
//!   |                       |
//!   5 --  6 --  7 --  8 --  9
//!   |          |            |
//!  10 -- 11 -- 12 -- 13 -- 14
//!   |                       |
//!  15 -- 16 -- 17 -- 18 -- 19
//! ```
//!
//! Qubits can be marked (e.g. a routed trio) and render as `[ 6]`.

use crate::Topology;

/// A rectangular lattice embedding: qubit `q` sits at `pos[q] = (col, row)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridEmbedding {
    cols: usize,
    rows: usize,
    pos: Vec<(usize, usize)>,
}

impl GridEmbedding {
    /// Row-major embedding for `cols × rows` qubit lattices — fits
    /// [`grid`](crate::grid), [`line`](crate::line) (one row), and
    /// [`johannesburg`](crate::johannesburg) (5×4).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn row_major(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "lattice dimensions must be positive");
        let pos = (0..cols * rows).map(|q| (q % cols, q / cols)).collect();
        GridEmbedding { cols, rows, pos }
    }

    /// The embedding for the paper's Johannesburg figures.
    pub fn johannesburg() -> Self {
        GridEmbedding::row_major(5, 4)
    }

    /// Renders `topology` on this lattice. Qubits listed in `marks` are
    /// bracketed (`[ 6]`), everything else is plain (` 6 `). Edges that do
    /// not connect lattice neighbors are listed below the lattice rather
    /// than drawn.
    ///
    /// # Panics
    ///
    /// Panics if the topology has more qubits than the lattice has cells.
    pub fn render(&self, topology: &Topology, marks: &[usize]) -> String {
        assert!(
            topology.num_qubits() <= self.pos.len(),
            "{}-qubit topology does not fit a {}x{} lattice",
            topology.num_qubits(),
            self.cols,
            self.rows
        );
        let qubit_at = |col: usize, row: usize| -> Option<usize> {
            self.pos[..topology.num_qubits()]
                .iter()
                .position(|&p| p == (col, row))
        };
        let mut out = String::new();
        let mut undrawable = Vec::new();
        for &(a, b) in topology.edges() {
            let ((ca, ra), (cb, rb)) = (self.pos[a], self.pos[b]);
            let aligned = (ra == rb && ca.abs_diff(cb) == 1) || (ca == cb && ra.abs_diff(rb) == 1);
            if !aligned {
                undrawable.push((a, b));
            }
        }

        for row in 0..self.rows {
            if topology.num_qubits() <= row * self.cols && qubit_at(0, row).is_none() {
                break;
            }
            // Node row.
            let mut line = String::new();
            for col in 0..self.cols {
                match qubit_at(col, row) {
                    Some(q) => {
                        if marks.contains(&q) {
                            line.push_str(&format!("[{q:>2}]"));
                        } else {
                            line.push_str(&format!(" {q:>2} "));
                        }
                        let right = qubit_at(col + 1, row);
                        let joined = right.is_some_and(|r| topology.are_adjacent(q, r));
                        line.push_str(if joined { "--" } else { "  " });
                    }
                    None => line.push_str("      "),
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
            // Vertical connector row.
            if row + 1 < self.rows {
                let mut vline = String::new();
                for col in 0..self.cols {
                    let above = qubit_at(col, row);
                    let below = qubit_at(col, row + 1);
                    let joined = matches!((above, below), (Some(a), Some(b))
                        if topology.are_adjacent(a, b));
                    vline.push_str(if joined { "  |   " } else { "      " });
                }
                let trimmed = vline.trim_end();
                if !trimmed.is_empty() {
                    out.push_str(trimmed);
                    out.push('\n');
                }
            }
        }
        if !undrawable.is_empty() {
            out.push_str("non-lattice edges:");
            for (a, b) in undrawable {
                out.push_str(&format!(" {a}-{b}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{johannesburg, line, ring};

    #[test]
    fn johannesburg_renders_its_published_shape() {
        let text = GridEmbedding::johannesburg().render(&johannesburg(), &[]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "  0 --  1 --  2 --  3 --  4");
        // Verticals 0–5 and 4–9 exist; 1–6, 2–7, 3–8 do not.
        assert_eq!(lines[1], "  |                       |");
        assert_eq!(lines[2], "  5 --  6 --  7 --  8 --  9");
        // Verticals 5–10, 7–12, 9–14.
        assert_eq!(lines[3], "  |           |           |");
        assert!(!text.contains("non-lattice"));
    }

    #[test]
    fn marks_bracket_qubits() {
        let text = GridEmbedding::johannesburg().render(&johannesburg(), &[6, 17, 3]);
        assert!(text.contains("[ 6]"));
        assert!(text.contains("[17]"));
        assert!(text.contains("[ 3]"));
        assert!(text.contains(" 12 "));
    }

    #[test]
    fn line_renders_one_row() {
        let text = GridEmbedding::row_major(5, 1).render(&line(5), &[]);
        assert_eq!(text, "  0 --  1 --  2 --  3 --  4\n");
    }

    #[test]
    fn ring_wraparound_edge_is_reported_not_drawn() {
        let text = GridEmbedding::row_major(4, 1).render(&ring(4), &[]);
        assert!(text.contains("non-lattice edges: 0-3"));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_topology_panics() {
        GridEmbedding::row_major(2, 2).render(&line(5), &[]);
    }
}
