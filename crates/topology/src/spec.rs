//! Textual device specs (`line:8`, `grid:5x4`, `johannesburg`, …).
//!
//! One grammar shared by every surface that names devices in text: the
//! `trios` CLI flags (`--device`, `--devices`) and the `trios-server`
//! protocol's per-request `device` field, so a spec means the same
//! topology everywhere.

use crate::{
    alltoall, clusters, full, grid, heavy_hex, heavy_hex_falcon27, heavy_hex_qubits, johannesburg,
    line, ring, Topology,
};
use std::error::Error;
use std::fmt;

/// A device spec that names no known topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The spec as given.
    pub spec: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown device '{}' (named: johannesburg, heavy-hex, grid, line, clusters; \
             parametric: line:N, ring:N, full:N, grid:CxR, clusters:KxS, alltoall:N, \
             heavy-hex:N for a lattice qubit count such as 127, 433, or 1121)",
            self.spec
        )
    }
}

impl Error for SpecError {}

/// Resolves a device spec to a topology.
///
/// Named devices: `johannesburg`, `heavy-hex`, `grid` (5×4), `line` (20),
/// `clusters` (4×5). Parametric: `line:N`, `ring:N`, `full:N`,
/// `grid:CxR`, `clusters:KxS`, `alltoall:N` (ion-trap all-to-all with
/// shuttle-distance link costs), and `heavy-hex:N` where `N` is a valid
/// heavy-hex lattice qubit count (`10c² + 12c + 1`: 23, 63, 127, 211, …,
/// 433, …, 1121 — IBM's Eagle/Osprey/Condor sizes among them).
/// Parametric sizes must be positive (and a ring at least 3): zero
/// dimensions are rejected here rather than reaching the constructors'
/// panics.
///
/// # Errors
///
/// Returns [`SpecError`] for unrecognized or malformed specs.
///
/// # Examples
///
/// ```
/// use trios_topology::parse_spec;
///
/// assert_eq!(parse_spec("grid:3x3").unwrap().num_qubits(), 9);
/// assert!(parse_spec("torus:3x3").is_err());
/// ```
pub fn parse_spec(spec: &str) -> Result<Topology, SpecError> {
    let unknown = || SpecError { spec: spec.into() };
    match spec {
        "johannesburg" => return Ok(johannesburg()),
        "heavy-hex" => return Ok(heavy_hex_falcon27()),
        "grid" => return Ok(grid(5, 4)),
        "line" => return Ok(line(20)),
        "clusters" => return Ok(clusters(4, 5)),
        _ => {}
    }
    let (kind, params) = spec.split_once(':').ok_or_else(unknown)?;
    let parse_n = |s: &str| match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(unknown()),
    };
    match kind {
        "line" => Ok(line(parse_n(params)?)),
        "ring" => {
            let n = parse_n(params)?;
            if n < 3 {
                return Err(unknown());
            }
            Ok(ring(n))
        }
        "full" => Ok(full(parse_n(params)?)),
        "alltoall" => Ok(alltoall(parse_n(params)?)),
        "heavy-hex" => {
            let n = parse_n(params)?;
            // Find the odd distance whose lattice has exactly n qubits.
            let d = (3..)
                .step_by(2)
                .take_while(|&d| heavy_hex_qubits(d) <= n)
                .find(|&d| heavy_hex_qubits(d) == n)
                .ok_or_else(unknown)?;
            Ok(heavy_hex(d))
        }
        "grid" | "clusters" => {
            let (a, b) = params.split_once('x').ok_or_else(unknown)?;
            let (a, b) = (parse_n(a)?, parse_n(b)?);
            if kind == "grid" {
                Ok(grid(a, b))
            } else {
                Ok(clusters(a, b))
            }
        }
        _ => Err(unknown()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_and_parametric_specs_resolve() {
        assert_eq!(parse_spec("johannesburg").unwrap().num_qubits(), 20);
        assert_eq!(parse_spec("heavy-hex").unwrap().num_qubits(), 27);
        assert_eq!(parse_spec("grid").unwrap().num_qubits(), 20);
        assert_eq!(parse_spec("line").unwrap().num_qubits(), 20);
        assert_eq!(parse_spec("clusters").unwrap().num_qubits(), 20);
        assert_eq!(parse_spec("line:7").unwrap().num_qubits(), 7);
        assert_eq!(parse_spec("ring:8").unwrap().num_qubits(), 8);
        assert_eq!(parse_spec("full:5").unwrap().num_qubits(), 5);
        assert_eq!(parse_spec("grid:3x3").unwrap().num_qubits(), 9);
        assert_eq!(parse_spec("clusters:2x4").unwrap().num_qubits(), 8);
        // The large-device zoo: IBM's published heavy-hex generations and
        // ion-trap all-to-all.
        assert_eq!(parse_spec("heavy-hex:127").unwrap().num_qubits(), 127);
        assert_eq!(parse_spec("heavy-hex:433").unwrap().num_qubits(), 433);
        assert_eq!(parse_spec("heavy-hex:1121").unwrap().num_qubits(), 1121);
        assert_eq!(parse_spec("heavy-hex:23").unwrap().num_qubits(), 23);
        let trap = parse_spec("alltoall:64").unwrap();
        assert_eq!(trap.num_qubits(), 64);
        assert_eq!(trap.link_cost(0, 63), Some(63.0));
        assert_eq!(parse_spec("full:1000").unwrap().num_edges(), 499_500);
    }

    #[test]
    fn bad_specs_error_instead_of_panicking() {
        for bad in [
            "torus:3x3",
            "line:x",
            "line:0",
            "ring:2",
            "grid:3",
            "grid:0x3",
            "clusters:2x",
            "nonsense",
            "",
            // Not heavy-hex lattice counts (and never panic on them).
            "heavy-hex:100",
            "heavy-hex:1120",
            "heavy-hex:0",
            "heavy-hex:x",
            "alltoall:0",
            "alltoall:",
        ] {
            let err = parse_spec(bad).unwrap_err();
            assert_eq!(err.spec, bad);
            assert!(err.to_string().contains("unknown device"), "{err}");
        }
    }
}
