//! # trios-bench — shared harness code for regenerating the paper's
//! tables and figures
//!
//! Each `benches/*.rs` target (run via `cargo bench -p trios-bench`)
//! regenerates one table or figure of the paper; this library holds the
//! pieces they share: the published qubit triplets, experiment runners,
//! and text-table helpers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use trios_core::{
    with_measurements, Calibration, Circuit, CompileReport, CompiledProgram, Compiler,
    InitialMapping, PaperConfig, Pipeline,
};
use trios_topology::{johannesburg, Topology};

/// The 35 qubit triplets of the paper's Figures 6 and 7, exactly as
/// printed on the x-axes (`(c1-c2-t) distance`), hardest first.
pub const FIG67_TRIPLETS: [(usize, usize, usize); 35] = [
    (6, 17, 3),
    (16, 1, 8),
    (7, 18, 3),
    (17, 4, 11),
    (19, 2, 6),
    (1, 19, 8),
    (3, 15, 14),
    (7, 3, 19),
    (15, 0, 9),
    (19, 1, 7),
    (1, 2, 18),
    (6, 13, 2),
    (14, 5, 15),
    (16, 1, 18),
    (19, 10, 6),
    (0, 12, 15),
    (5, 3, 9),
    (9, 3, 5),
    (13, 10, 1),
    (19, 15, 13),
    (0, 6, 11),
    (8, 6, 19),
    (11, 15, 8),
    (14, 13, 16),
    (18, 7, 8),
    (2, 5, 3),
    (5, 1, 3),
    (8, 10, 6),
    (11, 7, 9),
    (17, 10, 5),
    (1, 3, 4),
    (9, 12, 14),
    (10, 11, 0),
    (3, 1, 2),
    (17, 16, 18),
];

/// Geometric mean (inputs must be positive).
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Compiles the single-Toffoli experiment of Figures 6–8: a Toffoli whose
/// three logical qubits are pinned at the given Johannesburg triple, with
/// the three qubits measured (paper §5.1: prepare |110⟩, apply the
/// compiled Toffoli, measure).
pub fn compile_single_toffoli(
    device: &Topology,
    triplet: (usize, usize, usize),
    config: PaperConfig,
    seed: u64,
) -> CompiledProgram {
    let mut program = Circuit::with_name(3, "single-toffoli");
    program.ccx(0, 1, 2);
    let program = with_measurements(&program, &[0, 1, 2]);
    let compiler = Compiler::builder()
        .seed(seed)
        .config(config)
        .mapping(InitialMapping::Fixed(vec![triplet.0, triplet.1, triplet.2]))
        .build();
    compiler
        .compile(&program, device)
        .expect("single-Toffoli experiment compiles")
}

/// Compiles one of the paper's NISQ benchmarks on a device, with every
/// logical qubit measured (Figures 9–11).
pub fn compile_benchmark(
    circuit: &Circuit,
    device: &Topology,
    pipeline: Pipeline,
    seed: u64,
) -> CompiledProgram {
    compile_benchmark_with_report(circuit, device, pipeline, seed).0
}

/// Like [`compile_benchmark`], also returning the per-pass
/// [`CompileReport`] (wall times, gate-count deltas) for instrumentation
/// studies.
pub fn compile_benchmark_with_report(
    circuit: &Circuit,
    device: &Topology,
    pipeline: Pipeline,
    seed: u64,
) -> (CompiledProgram, CompileReport) {
    let measured = with_measurements(circuit, &(0..circuit.num_qubits()).collect::<Vec<_>>());
    let config = match pipeline {
        Pipeline::Baseline => PaperConfig::QiskitBaseline,
        Pipeline::Trios => PaperConfig::Trios,
    };
    let compiler = Compiler::builder().seed(seed).config(config).build();
    compiler
        .compile_with_report(&measured, device)
        .expect("benchmark compiles")
}

/// Serializes a compile report as one JSON line (the report types
/// implement `serde::Serialize` behind `trios-core`'s `serde` feature, so
/// nothing here formats fields by hand).
pub fn report_json(report: &CompileReport) -> String {
    serde_json::to_string(report).expect("reports contain only finite numbers")
}

/// The Johannesburg device (all Toffoli experiments run there).
pub fn device() -> Topology {
    johannesburg()
}

/// The paper's real-hardware calibration (Fig. 6/8) and its 20×-improved
/// near-future version (Fig. 9/11/12).
pub fn calibrations() -> (Calibration, Calibration) {
    let now = Calibration::johannesburg_2020_08_19();
    let future = now.improved(20.0);
    (now, future)
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a probability as a percentage with two decimals.
pub fn pct(p: f64) -> String {
    format!("{:6.2}%", 100.0 * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_distances_match_figure_labels() {
        // The x-labels pair each triplet with its gather distance; verify
        // the whole published list.
        let expected = [
            10, 10, 9, 9, 9, 8, 8, 8, 8, 8, 7, 7, 7, 7, 7, 6, 6, 6, 6, 6, 5, 5, 5, 5, 5, 4, 4, 4,
            4, 4, 3, 3, 3, 2, 2,
        ];
        let dev = device();
        for (&(a, b, t), &d) in FIG67_TRIPLETS.iter().zip(&expected) {
            assert_eq!(
                dev.triple_distance(a, b, t),
                Some(d),
                "triplet ({a}-{b}-{t})"
            );
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn single_toffoli_experiment_compiles_all_configs() {
        let dev = device();
        for config in PaperConfig::FIG6 {
            let compiled = compile_single_toffoli(&dev, (6, 17, 3), config, 0);
            assert!(compiled.stats.two_qubit_gates >= 6, "{config:?}");
            assert_eq!(compiled.stats.measurements, 3);
        }
    }

    #[test]
    fn report_json_covers_every_pass() {
        let dev = device();
        let circuit = {
            let mut c = Circuit::new(3);
            c.ccx(0, 1, 2);
            c
        };
        let (compiled, report) = compile_benchmark_with_report(&circuit, &dev, Pipeline::Trios, 0);
        assert_eq!(compiled.stats, report.stats);
        let json = report_json(&report);
        for pass in [
            "initial-mapping",
            "route-trios",
            "lower",
            "optimize",
            "validate",
            "schedule",
        ] {
            assert!(json.contains(pass), "missing {pass} in {json}");
        }
        assert!(json.contains("\"two_qubit_gates\""));
    }
}
