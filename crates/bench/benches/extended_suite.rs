//! Extension study (beyond the paper): the [`ExtendedBenchmark`] suite —
//! standalone QFT, Toffoli-density extremes, seeded random circuits, and
//! the CCZ/Fredkin workloads — through both pipelines on the paper's four
//! devices plus IBM's 27-qubit heavy-hex lattice.
//!
//! Shape expectations:
//!
//! * `qft-16` (no 3-qubit gates): zero change — the extension keeps the
//!   paper's no-overhead property.
//! * `toffoli_chain-18` (local trios): small but nonzero gains — trios are
//!   nearly gathered already.
//! * `random_nisq-16`, `hypergraph_state-12`, `fredkin_network-11`:
//!   baseline-style decompose-first loses exactly as it does for Toffolis
//!   in Figures 9–11, because CCZ/Fredkin scatter into six-plus CNOTs.
//!
//! Run with `cargo bench -p trios-bench --bench extended_suite`.

use trios_bench::{calibrations, compile_benchmark, geomean, pct, rule};
use trios_benchmarks::ExtendedBenchmark;
use trios_core::Pipeline;
use trios_topology::{heavy_hex_falcon27, PaperDevice, Topology};

fn main() {
    let (_, cal_future) = calibrations();
    let devices: Vec<(String, Topology)> = PaperDevice::ALL
        .into_iter()
        .map(|d| (d.label().to_string(), d.build()))
        .chain(std::iter::once((
            "heavy-hex-27".to_string(),
            heavy_hex_falcon27(),
        )))
        .collect();

    println!("Extension study: extended suite, 2q gate counts and success (20x errors)");
    println!(
        "{:<22} {:<20} {:>8} {:>8} {:>7} {:>9} {:>9}",
        "benchmark", "device", "base2q", "trios2q", "saved", "p(base)", "p(trios)"
    );
    rule(90);

    let mut ratios_per_device: Vec<Vec<f64>> = vec![Vec::new(); devices.len()];
    for b in ExtendedBenchmark::ALL {
        let circuit = b.build();
        for (di, (label, topo)) in devices.iter().enumerate() {
            let base = compile_benchmark(&circuit, topo, Pipeline::Baseline, 0);
            let trios = compile_benchmark(&circuit, topo, Pipeline::Trios, 0);
            let (cb, ct) = (base.stats.two_qubit_gates, trios.stats.two_qubit_gates);
            let saved = 100.0 * (1.0 - ct as f64 / cb as f64);
            let (pb, pt) = (
                base.estimate_success(&cal_future).probability(),
                trios.estimate_success(&cal_future).probability(),
            );
            if b.uses_three_qubit() {
                ratios_per_device[di].push(cb as f64 / ct as f64);
            }
            println!(
                "{:<22} {:<20} {:>8} {:>8} {:>6.1}% {:>9} {:>9}",
                b.name(),
                label,
                cb,
                ct,
                saved,
                pct(pb),
                pct(pt)
            );
        }
        rule(90);
    }

    println!("\ngeomean 2q-gate ratio (baseline / trios) over 3q-gate benchmarks:");
    for (di, (label, _)) in devices.iter().enumerate() {
        println!("  {:<20} {:.2}x", label, geomean(&ratios_per_device[di]));
    }
    println!("\nqft-16 rows must show 0.0% saved (no 3-qubit gates — no-overhead property)");
}
