//! Regenerates **Figure 6** (success probability of single Toffolis
//! between random qubit triplets on IBM Johannesburg, four compiler
//! configurations) and **Figure 7** (CNOT counts for the same triplets).
//!
//! The paper ran these on the real device; we evaluate the same compiled
//! circuits under the paper's §2.6 model with the published Johannesburg
//! calibration (see DESIGN.md §2 for the substitution argument).
//!
//! Paper reference points — Fig. 7 geomean CX: 29 / 28 / 23 / 19
//! (Trios-8 −35% vs baseline); Fig. 6 geomean success: 41% / 35% / 47% /
//! 50% (Trios-8 +23% vs baseline).
//!
//! Run with `cargo bench -p trios-bench --bench fig6_fig7`.

use trios_bench::{
    calibrations, compile_single_toffoli, device, geomean, pct, rule, FIG67_TRIPLETS,
};
use trios_core::PaperConfig;

fn main() {
    let dev = device();
    let (cal_now, _) = calibrations();
    let configs = PaperConfig::FIG6;

    println!("Figure 7: CNOT count / Figure 6: success probability per triplet");
    println!(
        "{:<14} {:>4} | {:>5} {:>5} {:>5} {:>5} | {:>8} {:>8} {:>8} {:>8}",
        "triplet", "dist", "Qis6", "Qis8", "Tri6", "Tri8", "Qis6", "Qis8", "Tri6", "Tri8"
    );
    rule(100);

    let mut cx_by_config = vec![Vec::new(); 4];
    let mut p_by_config = vec![Vec::new(); 4];
    for &(a, b, t) in &FIG67_TRIPLETS {
        let dist = dev.triple_distance(a, b, t).unwrap();
        let mut cx_row = Vec::new();
        let mut p_row = Vec::new();
        for (i, config) in configs.into_iter().enumerate() {
            let compiled = compile_single_toffoli(&dev, (a, b, t), config, 0);
            let cx = compiled.stats.two_qubit_gates;
            let p = compiled.estimate_success(&cal_now).probability();
            cx_by_config[i].push(cx as f64);
            p_by_config[i].push(p);
            cx_row.push(cx);
            p_row.push(p);
        }
        println!(
            "({:>2}-{:>2}-{:>2})   {:>4} | {:>5} {:>5} {:>5} {:>5} | {:>8} {:>8} {:>8} {:>8}",
            a,
            b,
            t,
            dist,
            cx_row[0],
            cx_row[1],
            cx_row[2],
            cx_row[3],
            pct(p_row[0]),
            pct(p_row[1]),
            pct(p_row[2]),
            pct(p_row[3])
        );
    }
    rule(100);

    let cx_gm: Vec<f64> = cx_by_config.iter().map(|v| geomean(v)).collect();
    let p_gm: Vec<f64> = p_by_config.iter().map(|v| geomean(v)).collect();
    println!(
        "{:<19} | {:>5.1} {:>5.1} {:>5.1} {:>5.1} | {:>8} {:>8} {:>8} {:>8}",
        "geometric mean",
        cx_gm[0],
        cx_gm[1],
        cx_gm[2],
        cx_gm[3],
        pct(p_gm[0]),
        pct(p_gm[1]),
        pct(p_gm[2]),
        pct(p_gm[3])
    );
    println!();
    println!("paper Fig. 7 geomeans:   29.0  28.0  23.0  19.0   (CX count)");
    println!("paper Fig. 6 geomeans:  41.0%  35.0%  47.0%  50.0% (success, real hardware)");
    println!();
    println!(
        "Trios (8-CNOT) vs Qiskit baseline: {:.0}% fewer CNOTs (paper: 35%), {:.0}% higher success (paper: 23%)",
        100.0 * (1.0 - cx_gm[3] / cx_gm[0]),
        100.0 * (p_gm[3] / p_gm[0] - 1.0)
    );
}
