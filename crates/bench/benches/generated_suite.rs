//! Generated-workload suite: every `trios_gen` family compiled through
//! every registered routing strategy — the open-ended counterpart of the
//! fixed paper suite, comparing routers on workloads nobody hand-picked.
//!
//! Run with `cargo bench -p trios-bench --bench generated_suite`.
//! Pass `-- --test` (as CI does) for a fast smoke mode: a small
//! fixed-seed slab of cases per family, compiled under every strategy,
//! legality-checked, and required to be deterministic.

use trios_bench::{geomean, rule};
use trios_core::{Compiler, StrategyRegistry};
use trios_gen::{Family, GeneratedCircuit};
use trios_route::verify_legal;
use trios_topology::line;

const SEED: u64 = 0;

fn cases_per_family(count: usize) -> Vec<GeneratedCircuit> {
    Family::ALL
        .into_iter()
        .flat_map(|family| (0..count as u64).map(move |i| family.generate_case(SEED + i)))
        .collect()
}

fn compiler_for(router: &str) -> Compiler {
    Compiler::builder().router(router).seed(SEED).build()
}

/// Smoke mode for CI: 2 cases per family through every strategy, with
/// legality and determinism required.
fn run_test_mode() {
    let topo = line(8);
    let suite = cases_per_family(2);
    for router in StrategyRegistry::standard().names() {
        for case in &suite {
            let first = compiler_for(router)
                .compile(&case.circuit, &topo)
                .unwrap_or_else(|e| panic!("{router} failed on {}: {e}", case.name));
            verify_legal(&first.circuit, &topo)
                .unwrap_or_else(|v| panic!("{router} illegal on {}: {v}", case.name));
            let second = compiler_for(router).compile(&case.circuit, &topo).unwrap();
            assert_eq!(
                first, second,
                "{router} must be deterministic on {}",
                case.name
            );
        }
        println!(
            "router {router:<18} ok ({} generated circuits, legal + deterministic)",
            suite.len()
        );
    }
    println!("generated_suite --test: all registered strategies pass");
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        run_test_mode();
        return;
    }

    let topo = line(8);
    let suite = cases_per_family(6);
    let registry = StrategyRegistry::standard();
    let routers: Vec<&str> = registry.names().collect();

    println!(
        "Generated-workload ablation: {} cases ({} per family) on line:8, seed {SEED}",
        suite.len(),
        suite.len() / Family::ALL.len()
    );
    println!();
    println!(
        "{:<28} {:>12} {:>8} {:>10}",
        "router", "2q gates", "swaps", "Δ (µs)"
    );
    rule(62);
    for router in &routers {
        let compiler = compiler_for(router);
        let mut two_q = Vec::new();
        let mut swaps = 0usize;
        let mut durations = Vec::new();
        for case in &suite {
            let compiled = compiler
                .compile(&case.circuit, &topo)
                .unwrap_or_else(|e| panic!("{router} failed on {}: {e}", case.name));
            two_q.push(compiled.stats.two_qubit_gates.max(1) as f64);
            swaps += compiled.stats.swap_count;
            durations.push(compiled.stats.duration_us.max(f64::MIN_POSITIVE));
        }
        println!(
            "{:<28} {:>12.1} {:>8} {:>10.2}",
            router,
            geomean(&two_q),
            swaps,
            geomean(&durations)
        );
    }
    rule(62);
    println!();
    println!("families: {}", Family::ALL.map(|f| f.name()).join(", "));
    println!("expected: trio-family routers beat baseline on the Toffoli-bearing");
    println!("families (toffoli-ripple, layered) and tie it on the Toffoli-free ones");
}
