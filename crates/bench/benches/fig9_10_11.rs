//! Regenerates **Figures 9, 10, and 11**: the NISQ benchmark study across
//! the four 20-qubit device types.
//!
//! * Fig. 9 — simulated success probability, baseline vs Trios, 20×
//!   improved errors. Paper geomeans (Toffoli benchmarks):
//!   johannesburg 2.2%→9.8%, grid 3.2%→12%, line 0.19%→6.0%,
//!   clusters 7.3%→17%.
//! * Fig. 10 — percent fewer two-qubit gates. Paper geomean reductions:
//!   37%, 36%, 48%, 26%.
//! * Fig. 11 — success ratio Trios/baseline. Paper geomeans: 4.4×, 3.7×,
//!   31×, 2.3×.
//!
//! Run with `cargo bench -p trios-bench --bench fig9_10_11`.

// Device columns are printed positionally; indexed loops keep the four
// figures' row/column logic identical to the paper's layout.
#![allow(clippy::needless_range_loop)]

use trios_bench::{calibrations, compile_benchmark, geomean, pct, rule};
use trios_benchmarks::Benchmark;
use trios_core::Pipeline;
use trios_topology::PaperDevice;

fn main() {
    let (_, cal_future) = calibrations();
    let devices = PaperDevice::ALL;

    // results[device][benchmark] = (cx_base, cx_trios, p_base, p_trios)
    let mut results: Vec<Vec<(usize, usize, f64, f64)>> = Vec::new();
    for device in devices {
        let topo = device.build();
        let mut per_bench = Vec::new();
        for b in Benchmark::ALL {
            let circuit = b.build();
            let base = compile_benchmark(&circuit, &topo, Pipeline::Baseline, 0);
            let trios = compile_benchmark(&circuit, &topo, Pipeline::Trios, 0);
            per_bench.push((
                base.stats.two_qubit_gates,
                trios.stats.two_qubit_gates,
                base.estimate_success(&cal_future).probability(),
                trios.estimate_success(&cal_future).probability(),
            ));
        }
        results.push(per_bench);
    }

    println!("Figure 9: simulated benchmark success probability (20x improved errors)");
    println!(
        "{:<28} {:>18} {:>18} {:>18} {:>18}",
        "benchmark", "johannesburg", "grid", "line", "clusters"
    );
    println!(
        "{:<28} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9}",
        "", "base", "trios", "base", "trios", "base", "trios", "base", "trios"
    );
    rule(106);
    for (bi, b) in Benchmark::ALL.into_iter().enumerate() {
        print!("{:<28}", b.name());
        for di in 0..4 {
            let (_, _, pb, pt) = results[di][bi];
            print!(" {:>8} {:>9}", pct(pb), pct(pt));
        }
        println!();
    }
    rule(106);
    print!("{:<28}", "geomean (Toffoli benchmarks)");
    for di in 0..4 {
        let pb: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .filter(|(_, b)| b.uses_toffoli())
            .map(|(bi, _)| results[di][bi].2)
            .collect();
        let pt: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .filter(|(_, b)| b.uses_toffoli())
            .map(|(bi, _)| results[di][bi].3)
            .collect();
        print!(" {:>8} {:>9}", pct(geomean(&pb)), pct(geomean(&pt)));
    }
    println!();
    println!("paper: 2.2%->9.8% (johannesburg), 3.2%->12% (grid), 0.19%->6.0% (line), 7.3%->17% (clusters)");
    println!();

    println!("Figure 10: two-qubit gate reduction over baseline (higher is better)");
    println!(
        "{:<28} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "johannesburg", "grid", "line", "clusters"
    );
    rule(88);
    for (bi, b) in Benchmark::ALL.into_iter().enumerate() {
        print!("{:<28}", b.name());
        for di in 0..4 {
            let (cb, ct, _, _) = results[di][bi];
            print!(" {:>13.1}%", 100.0 * (1.0 - ct as f64 / cb as f64));
        }
        println!();
    }
    rule(88);
    print!("{:<28}", "geomean reduction*");
    for di in 0..4 {
        let keep: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .filter(|(_, b)| b.uses_toffoli())
            .map(|(bi, _)| results[di][bi].0 as f64 / results[di][bi].1 as f64)
            .collect();
        print!(" {:>13.1}%", 100.0 * (1.0 - 1.0 / geomean(&keep)));
    }
    println!();
    println!("paper: 37% (johannesburg), 36% (grid), 48% (line), 26% (clusters)");
    println!(
        "* geomean of base/trios gate ratios over Toffoli benchmarks, expressed as a reduction"
    );
    println!();

    println!("Figure 11: success normalized to baseline (p_trios/p_baseline)");
    println!(
        "{:<28} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "johannesburg", "grid", "line", "clusters"
    );
    rule(88);
    for (bi, b) in Benchmark::ALL.into_iter().enumerate() {
        print!("{:<28}", b.name());
        for di in 0..4 {
            let (_, _, pb, pt) = results[di][bi];
            print!(" {:>13.2}x", pt / pb);
        }
        println!();
    }
    rule(88);
    print!("{:<28}", "geomean (Toffoli benchmarks)");
    for di in 0..4 {
        let ratios: Vec<f64> = Benchmark::ALL
            .iter()
            .enumerate()
            .filter(|(_, b)| b.uses_toffoli())
            .map(|(bi, _)| results[di][bi].3 / results[di][bi].2)
            .collect();
        print!(" {:>13.2}x", geomean(&ratios));
    }
    println!();
    println!("paper: 4.4x (johannesburg), 3.7x (grid), 31x (line), 2.3x (clusters)");
}
