//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Direction policy** — which endpoint of a distant pair moves
//!    (always-first / always-second / stochastic / meet-in-the-middle).
//! 2. **Initial mapping** — trivial vs greedy interaction-aware.
//! 3. **Toffoli strategy** — forced 6-CNOT / forced 8-CNOT /
//!    connectivity-aware, isolating the value of the mapping-aware second
//!    decomposition pass from the value of trio routing itself.
//! 4. **Lookahead vs Trios** — the paper's §3 claim that lookahead routing
//!    "treats the symptoms" of pre-decomposition: a windowed-lookahead
//!    baseline recovers part of the gap, Trios the rest.
//!
//! Run with `cargo bench -p trios-bench --bench ablations`.

use trios_bench::{geomean, rule};
use trios_benchmarks::Benchmark;
use trios_core::{compile, CompileOptions, DirectionPolicy, InitialMapping, Pipeline};
use trios_route::LookaheadConfig;
use trios_topology::johannesburg;

fn main() {
    let topo = johannesburg();
    let suite: Vec<Benchmark> = Benchmark::toffoli_suite().collect();

    // --- Ablation 1: direction policy (Trios pipeline).
    println!("Ablation 1: pair-routing direction policy (Trios, Johannesburg, geomean 2q gates)");
    let policies = [
        ("move-first", DirectionPolicy::MoveFirst),
        ("move-second", DirectionPolicy::MoveSecond),
        ("stochastic", DirectionPolicy::Stochastic),
        ("meet-in-middle", DirectionPolicy::MeetInMiddle),
    ];
    for (name, policy) in policies {
        let counts: Vec<f64> = suite
            .iter()
            .map(|b| {
                let options = CompileOptions {
                    direction: policy,
                    ..CompileOptions::with_seed(0)
                };
                compile(&b.build(), &topo, &options)
                    .unwrap()
                    .stats
                    .two_qubit_gates as f64
            })
            .collect();
        println!("  {:<16} {:>8.1}", name, geomean(&counts));
    }
    println!();

    // --- Ablation 2: initial mapping.
    println!("Ablation 2: initial mapping (Trios, Johannesburg, geomean 2q gates)");
    for (name, mapping) in [
        ("trivial", InitialMapping::Trivial),
        ("greedy-interaction", InitialMapping::GreedyInteraction),
        ("random(seed 5)", InitialMapping::Random { seed: 5 }),
    ] {
        let counts: Vec<f64> = suite
            .iter()
            .map(|b| {
                let options = CompileOptions {
                    mapping: mapping.clone(),
                    direction: DirectionPolicy::MoveFirst,
                    ..CompileOptions::with_seed(0)
                };
                compile(&b.build(), &topo, &options)
                    .unwrap()
                    .stats
                    .two_qubit_gates as f64
            })
            .collect();
        println!("  {:<18} {:>8.1}", name, geomean(&counts));
    }
    println!();

    // --- Ablation 3: second-pass Toffoli strategy, per benchmark.
    println!("Ablation 3: Toffoli strategy within Trios routing (Johannesburg, 2q gates)");
    println!(
        "{:<28} {:>10} {:>10} {:>12}",
        "benchmark", "forced-6", "forced-8", "conn-aware"
    );
    rule(64);
    let strategies = ["six", "eight", "standard"];
    let mut per_strategy = vec![Vec::new(); 3];
    for b in &suite {
        let circuit = b.build();
        let mut row = Vec::new();
        for (i, strategy) in strategies.into_iter().enumerate() {
            let options = CompileOptions {
                pipeline: Pipeline::Trios,
                decomposer: Some(strategy.into()),
                direction: DirectionPolicy::MoveFirst,
                ..CompileOptions::with_seed(0)
            };
            let gates = compile(&circuit, &topo, &options)
                .unwrap()
                .stats
                .two_qubit_gates;
            per_strategy[i].push(gates as f64);
            row.push(gates);
        }
        println!(
            "{:<28} {:>10} {:>10} {:>12}",
            b.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    rule(64);
    println!(
        "{:<28} {:>10.1} {:>10.1} {:>12.1}",
        "geomean",
        geomean(&per_strategy[0]),
        geomean(&per_strategy[1]),
        geomean(&per_strategy[2])
    );
    println!();
    println!("expected: on triangle-free Johannesburg, connectivity-aware ≈ forced-8 < forced-6");
    println!("(the mapping-aware second pass always picks the 8-CNOT form there — paper §4)");
    println!();

    // --- Ablation 4: lookahead baseline vs Trios (paper §3).
    println!("Ablation 4: does lookahead routing fix the baseline? (Johannesburg, 2q gates)");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "benchmark", "baseline", "lookahead", "trios"
    );
    rule(62);
    let mut cols = vec![Vec::new(); 3];
    for b in &suite {
        let circuit = b.build();
        let configs = [
            CompileOptions {
                pipeline: Pipeline::Baseline,
                decomposer: Some("six".into()),
                direction: DirectionPolicy::MoveFirst,
                ..CompileOptions::with_seed(0)
            },
            CompileOptions {
                pipeline: Pipeline::Baseline,
                decomposer: Some("six".into()),
                direction: DirectionPolicy::MoveFirst,
                lookahead: Some(LookaheadConfig::default()),
                ..CompileOptions::with_seed(0)
            },
            CompileOptions {
                pipeline: Pipeline::Trios,
                direction: DirectionPolicy::MoveFirst,
                ..CompileOptions::with_seed(0)
            },
        ];
        let mut row = Vec::new();
        for (i, options) in configs.iter().enumerate() {
            let gates = compile(&circuit, &topo, options)
                .unwrap()
                .stats
                .two_qubit_gates;
            cols[i].push(gates as f64);
            row.push(gates);
        }
        println!(
            "{:<28} {:>10} {:>10} {:>10}",
            b.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    rule(62);
    println!(
        "{:<28} {:>10.1} {:>10.1} {:>10.1}",
        "geomean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2])
    );
    println!();
    println!("expected: baseline ≥ lookahead ≥ trios — lookahead narrows but does not close");
    println!("the gap, because it still routes six scattered CNOTs per Toffoli (paper §3)");
    println!();

    // --- Ablation 5: optimization level (Trios pipeline).
    println!("Ablation 5: gate-level optimization depth (Trios, Johannesburg, 2q gates)");
    println!(
        "{:<28} {:>8} {:>8} {:>8}",
        "benchmark", "none", "light", "full"
    );
    rule(56);
    use trios_core::OptimizeOptions;
    let levels = [
        OptimizeOptions::none(),
        OptimizeOptions::default(),
        OptimizeOptions::full(),
    ];
    let mut per_level = vec![Vec::new(); 3];
    for b in &suite {
        let circuit = b.build();
        let mut row = Vec::new();
        for (i, &optimize) in levels.iter().enumerate() {
            let options = CompileOptions {
                optimize,
                direction: DirectionPolicy::MoveFirst,
                ..CompileOptions::with_seed(0)
            };
            let gates = compile(&circuit, &topo, &options)
                .unwrap()
                .stats
                .two_qubit_gates;
            per_level[i].push(gates as f64);
            row.push(gates);
        }
        println!("{:<28} {:>8} {:>8} {:>8}", b.name(), row[0], row[1], row[2]);
    }
    rule(56);
    println!(
        "{:<28} {:>8.1} {:>8.1} {:>8.1}",
        "geomean",
        geomean(&per_level[0]),
        geomean(&per_level[1]),
        geomean(&per_level[2])
    );
    println!();
    println!("light = the paper's Qiskit-style setting; full adds commutation-aware");
    println!("CX cancellation and rotation merging (Nam et al.-style)");
    println!();

    // --- Ablation 6: crosstalk policy (paper §2.3 / Murali et al.).
    println!(
        "Ablation 6: crosstalk policy on Trios-compiled benchmarks (Johannesburg, 20x errors)"
    );
    println!(
        "{:<28} {:>9} {:>11} {:>11} {:>11}",
        "benchmark", "conflicts", "p(ignore)", "p(charge)", "p(avoid)"
    );
    rule(74);
    use trios_core::Calibration;
    use trios_noise::{estimate_success_with_crosstalk, CrosstalkPolicy};
    use trios_schedule::{crosstalk_conflicts, schedule_asap, GateDurations};
    let cal = Calibration::near_future();
    // Crosstalk roughly doubles a gate's error rate when a coupled
    // neighbor runs simultaneously (Murali et al.'s measurements).
    let gamma = cal.two_qubit_error;
    for b in &suite {
        let options = CompileOptions {
            direction: DirectionPolicy::MoveFirst,
            ..CompileOptions::with_seed(0)
        };
        let compiled = compile(&b.build(), &topo, &options).unwrap();
        let conflicts = crosstalk_conflicts(
            &schedule_asap(&compiled.circuit, &GateDurations::johannesburg()),
            &topo,
        );
        let p = |policy| {
            estimate_success_with_crosstalk(&compiled.circuit, &cal, &topo, policy).probability()
        };
        println!(
            "{:<28} {:>9} {:>11.4} {:>11.4} {:>11.4}",
            b.name(),
            conflicts,
            p(CrosstalkPolicy::Ignore),
            p(CrosstalkPolicy::Charge {
                error_per_conflict: gamma
            }),
            p(CrosstalkPolicy::Avoid),
        );
    }
    rule(74);
    println!("charge = ASAP schedule eats each conflict; avoid = serialize coupled pairs");
    println!("(longer duration, zero conflicts) — which wins depends on conflict density");
    println!();

    // --- Ablation 7: bridge vs SWAP for distance-2 CNOTs.
    println!("Ablation 7: distance-2 CNOTs as bridges vs SWAPs (Trios, Johannesburg, 2q gates)");
    println!("{:<28} {:>10} {:>10}", "benchmark", "swap-only", "bridge");
    rule(50);
    let mut cols = vec![Vec::new(); 2];
    for b in &suite {
        let circuit = b.build();
        let mut row = Vec::new();
        for (i, bridge) in [false, true].into_iter().enumerate() {
            let options = CompileOptions {
                bridge,
                direction: DirectionPolicy::MoveFirst,
                ..CompileOptions::with_seed(0)
            };
            let gates = compile(&circuit, &topo, &options)
                .unwrap()
                .stats
                .two_qubit_gates;
            cols[i].push(gates as f64);
            row.push(gates);
        }
        println!("{:<28} {:>10} {:>10}", b.name(), row[0], row[1]);
    }
    rule(50);
    println!(
        "{:<28} {:>10.1} {:>10.1}",
        "geomean",
        geomean(&cols[0]),
        geomean(&cols[1])
    );
    println!();
    println!("bridges tie SWAPs on gate count per use (4 vs 3+1) but never move data;");
    println!("they win on one-shot pairs and lose when the router would have reused");
    println!("the proximity — the geomeans show which effect dominates per suite");
}
