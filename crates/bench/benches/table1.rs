//! Regenerates **Table 1**: the benchmark inventory — qubits, Toffoli
//! count, and two-qubit gate count after 8-CNOT Toffoli decomposition
//! (before routing).
//!
//! Run with `cargo bench -p trios-bench --bench table1`.

use trios_benchmarks::Benchmark;

/// The paper's Table 1 values, for side-by-side comparison.
fn paper_row(b: Benchmark) -> (usize, usize, usize) {
    match b {
        Benchmark::CnxDirty11 => (11, 16, 128),
        Benchmark::CnxHalfborrowed19 => (19, 32, 256),
        Benchmark::CnxLogancilla19 => (19, 17, 136),
        Benchmark::CnxInplace4 => (4, 54, 490),
        Benchmark::CuccaroAdder20 => (20, 18, 190),
        Benchmark::TakahashiAdder20 => (20, 18, 188),
        Benchmark::IncrementerBorrowedbit5 => (5, 50, 448),
        Benchmark::Grovers9 => (9, 84, 672),
        Benchmark::QftAdder16 => (16, 0, 92),
        Benchmark::Bv20 => (20, 0, 19),
        Benchmark::QaoaComplete10 => (10, 0, 90),
    }
}

fn main() {
    println!("Table 1: benchmark details (ours vs. paper)");
    println!(
        "{:<28} {:>6} {:>6} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "qubits", "(pap)", "toffolis", "(paper)", "cnots*", "(paper)"
    );
    trios_bench::rule(92);
    for b in Benchmark::ALL {
        let (q, t, c) = b.table1_row();
        let (pq, pt, pc) = paper_row(b);
        println!(
            "{:<28} {:>6} {:>6} | {:>9} {:>9} | {:>9} {:>9}",
            b.name(),
            q,
            pq,
            t,
            pt,
            c,
            pc
        );
    }
    trios_bench::rule(92);
    println!("* two-qubit gates after decomposing Toffolis with the 8-CNOT form, before routing");
    println!("  (cnx_inplace uses the Barenco ladder substitution — see DESIGN.md §2)");
}
