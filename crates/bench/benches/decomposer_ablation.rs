//! The **router × decomposer ablation grid**: every registered Toffoli
//! decomposition crossed with the baseline and Trios routers on the
//! paper's Toffoli-bearing suite, estimated under the 20×-improved
//! near-future calibration (the paper's Figure 9–11 setting — the real
//! 2020 rates drive multi-Toffoli benchmarks to ~0 probability, where
//! ratios stop meaning anything), and emitted as `BENCH_decomp.json` —
//! the per-cell success-probability geomeans later PRs regress against.
//!
//! This is the experiment ROADMAP asked for once lowering became
//! pluggable: does the +21% trios/baseline headline grow when the
//! decomposition cooperates with routing (connectivity-aware `standard`
//! vs the forced variants), and what would a qutrit-style lowering per
//! Gokhale et al. buy (cost-model-only: those cells are repriced, never
//! executed)?
//!
//! Run with `cargo bench -p trios-bench --bench decomposer_ablation`.
//! Pass `-- --test` (as CI does) for a fast smoke grid: two benchmarks,
//! four decomposers, no file output, with the report's invariants
//! asserted.

use trios_bench::device;
use trios_benchmarks::Benchmark;
use trios_core::{
    run_sweep, Calibration, DecomposerRegistry, SweepBenchmark, SweepReport, SweepSpec,
};

/// The ablation grid over the given benchmarks and decomposer names.
fn grid_spec(benchmarks: &[Benchmark], decomposers: Vec<String>) -> SweepSpec {
    SweepSpec {
        benchmarks: benchmarks
            .iter()
            .map(|b| SweepBenchmark::measured(b.name(), b.build()))
            .collect(),
        devices: vec![("johannesburg".into(), device())],
        routers: vec!["baseline".into(), "trios".into()],
        decomposers,
        calibrations: vec![(
            "near-future".into(),
            Calibration::johannesburg_2020_08_19().improved(20.0),
        )],
        ..SweepSpec::new()
    }
}

/// Every registered decomposition, in registry order — the grid stays in
/// sync with `DecomposerRegistry::standard()` automatically.
fn all_decomposers() -> Vec<String> {
    DecomposerRegistry::standard()
        .names()
        .map(String::from)
        .collect()
}

/// CI smoke grid: 2 benchmarks × 2 routers × 4 decomposers, invariants
/// asserted, nothing written.
fn run_test_mode() {
    let benchmarks = [Benchmark::CnxInplace4, Benchmark::IncrementerBorrowedbit5];
    let decomposers: Vec<String> = ["standard", "six", "eight", "qutrit"]
        .into_iter()
        .map(String::from)
        .collect();
    let spec = grid_spec(&benchmarks, decomposers.clone());
    let report = run_sweep(&spec).unwrap();

    assert_eq!(
        report.cells.len(),
        2 * 2 * 4,
        "2 benchmarks x 2 routers x 4 decomposers"
    );
    for cell in &report.cells {
        assert!(
            cell.probability > 0.0 && cell.probability <= 1.0,
            "{}/{}/{}: probability {}",
            cell.benchmark,
            cell.router,
            cell.decomposer,
            cell.probability
        );
    }
    // One geomean per (non-baseline router × decomposer) grid cell.
    for decomposer in &decomposers {
        assert!(
            report.geomean_for_grid("trios", decomposer).is_some(),
            "missing trios x {decomposer} geomean"
        );
    }
    // The forced variants genuinely differ: a grid that collapsed six and
    // eight into one lowering would be lying about its axis.
    let total_2q = |decomposer: &str| -> usize {
        report
            .cells
            .iter()
            .filter(|c| c.router == "trios" && c.decomposer == decomposer)
            .map(|c| c.two_qubit_gates)
            .sum()
    };
    assert_ne!(
        total_2q("six"),
        total_2q("eight"),
        "forced-6 and forced-8 must produce different gate totals"
    );
    // The emitted JSON must satisfy the documented schema (parse back to
    // an equal report).
    let parsed = SweepReport::from_json(&report.to_json_pretty()).unwrap();
    assert_eq!(parsed, report);
    let geomean = report.geomean_for_grid("trios", "standard").unwrap();
    println!("decomposer_ablation --test: 16-cell grid ok, trios x standard geomean {geomean:.3}x");
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        run_test_mode();
        return;
    }

    let suite: Vec<Benchmark> = Benchmark::toffoli_suite().collect();
    let spec = grid_spec(&suite, all_decomposers());
    let report = run_sweep(&spec).unwrap();
    print!("{report}");

    // Anchor at the workspace root regardless of the bench's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decomp.json");
    std::fs::write(path, report.to_json_pretty()).expect("write BENCH_decomp.json");
    println!();
    println!(
        "wrote BENCH_decomp.json ({} cells, {} ratio rows, {} grid geomeans)",
        report.cells.len(),
        report.ratios.len(),
        report.geomeans.len()
    );
    println!(
        "qutrit cells are repriced from the standard compile (cost model only; Gokhale et al.)"
    );
}
