//! Compile-time scaling curves across the large-device zoo, emitted as
//! `BENCH_scale.json` — the perf budgets later PRs regress against.
//!
//! The grid is device family × device size × circuit size × router:
//!
//! * **heavy-hex** — IBM's Eagle/Osprey/Condor lattices (127/433/1121
//!   qubits), sparse degree-≤3 graphs where routing does real work.
//! * **grid** — square-ish 2D grids at matching sizes, the denser
//!   superconducting alternative.
//! * **alltoall** — ion-trap complete graphs (stored implicitly: ~628k
//!   edges at 1121 qubits never materialize), where routing inserts no
//!   SWAPs but placement and validation still walk the full circuit.
//!
//! Workload: seeded `ToffoliRipple` chains (the paper's adder-shaped
//! programs) at 52 and 102 qubits — the 102-qubit instance carries 200
//! Toffolis, double the ≥100 the scaling acceptance budget is defined
//! over.
//!
//! **Asserted budgets** (release): `trios` routes the 200-Toffoli
//! workload on `heavy-hex:1121` in < 5 s, and on `alltoall:1121` in
//! < 5 s. Regressions fail the bench, and CI's `--test` smoke keeps a
//! reduced version of the same assertions on every push.
//!
//! Run with `cargo bench -p trios-bench --bench scale`; pass `-- --test`
//! for the CI smoke (127-qubit devices only, no file output).

use std::time::Instant;
use trios_core::Compiler;
use trios_gen::{Family, Params};
use trios_ir::Circuit;
use trios_topology::parse_spec;

/// The two routers the curves compare: the paper's trios router and its
/// lookahead variant (the hot path the in-place swap scoring rewrote).
const ROUTERS: [&str; 2] = ["trios", "trios-lookahead"];

fn workload(qubits: usize) -> Circuit {
    // depth 2 → 2 · (qubits − 2) Toffolis plus a carry CX per sweep.
    Family::ToffoliRipple.generate(&Params::new(qubits, 2), 7)
}

fn toffoli_count(circuit: &Circuit) -> usize {
    circuit
        .iter()
        .filter(|i| matches!(i.gate(), trios_ir::Gate::Ccx | trios_ir::Gate::Ccz))
        .count()
}

struct Point {
    device: String,
    device_qubits: usize,
    router: &'static str,
    circuit_qubits: usize,
    toffolis: usize,
    swaps: usize,
    wall_s: f64,
}

fn measure(spec: &str, router: &'static str, circuit: &Circuit) -> Point {
    let device = parse_spec(spec).expect("bench device spec is valid");
    let compiler = Compiler::builder().router(router).seed(7).build();
    let started = Instant::now();
    let program = compiler
        .compile(circuit, &device)
        .unwrap_or_else(|e| panic!("{router} on {spec} failed: {e}"));
    let wall_s = started.elapsed().as_secs_f64();
    Point {
        device: spec.to_string(),
        device_qubits: device.num_qubits(),
        router,
        circuit_qubits: circuit.num_qubits(),
        toffolis: toffoli_count(circuit),
        swaps: program.stats.swap_count,
        wall_s,
    }
}

fn run_test_mode() {
    // CI smoke: the smallest size of each family, both routers, with a
    // generous ceiling that still catches an accidental return to any of
    // the O(n²)/O(n³) paths this bench was built to guard.
    let circuit = workload(52);
    for spec in ["heavy-hex:127", "grid:12x11", "alltoall:127"] {
        for router in ROUTERS {
            let p = measure(spec, router, &circuit);
            assert!(
                p.wall_s < 30.0,
                "{router} on {spec} took {:.2}s in the smoke budget",
                p.wall_s
            );
            println!(
                "scale --test: {spec} {router}: {:.3}s, {} swaps",
                p.wall_s, p.swaps
            );
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        run_test_mode();
        return;
    }

    let devices = [
        "heavy-hex:127",
        "heavy-hex:433",
        "heavy-hex:1121",
        "grid:12x11",
        "grid:21x21",
        "grid:34x33",
        "alltoall:127",
        "alltoall:433",
        "alltoall:1121",
    ];
    let circuits = [workload(52), workload(102)];
    assert!(
        toffoli_count(&circuits[1]) >= 100,
        "the budget workload must carry at least 100 Toffolis"
    );

    let mut points = Vec::new();
    for spec in devices {
        for circuit in &circuits {
            for router in ROUTERS {
                let p = measure(spec, router, circuit);
                println!(
                    "scale: {:>14} ({:>4}q) {:<15} circuit {:>3}q/{} toffolis: {:>7.3}s, {} swaps",
                    p.device,
                    p.device_qubits,
                    p.router,
                    p.circuit_qubits,
                    p.toffolis,
                    p.wall_s,
                    p.swaps
                );
                points.push(p);
            }
        }
    }

    // The acceptance budgets: the 200-Toffoli workload on the
    // 1121-qubit devices, trios router, must compile in < 5 s.
    let budget = |device: &str| {
        let p = points
            .iter()
            .find(|p| p.device == device && p.router == "trios" && p.circuit_qubits == 102)
            .expect("budgeted cell was measured");
        assert!(
            p.wall_s < 5.0,
            "budget blown: trios on {device} took {:.2}s (limit 5s)",
            p.wall_s
        );
        p.wall_s
    };
    let hh_s = budget("heavy-hex:1121");
    let trap_s = budget("alltoall:1121");

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                r#"    {{"device": "{}", "device_qubits": {}, "router": "{}", "circuit_qubits": {}, "toffolis": {}, "swaps": {}, "wall_s": {:.4}}}"#,
                p.device, p.device_qubits, p.router, p.circuit_qubits, p.toffolis, p.swaps, p.wall_s
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "scale",
  "workload": "toffoli-ripple depth 2, seed 7 (52q/100 toffolis and 102q/200 toffolis)",
  "budgets": {{
    "heavy_hex_1121_trios_200_toffolis": {{"limit_s": 5.0, "wall_s": {hh_s:.4}}},
    "alltoall_1121_trios_200_toffolis": {{"limit_s": 5.0, "wall_s": {trap_s:.4}}}
  }},
  "points": [
{rows}
  ]
}}
"#,
        rows = rows.join(",\n"),
    );

    // Anchor at the workspace root regardless of the bench's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!(
        "scale: {} cells; heavy-hex:1121 trios {hh_s:.2}s, alltoall:1121 trios {trap_s:.2}s \
         (budget 5s each)",
        points.len()
    );
    println!("wrote BENCH_scale.json");
}
