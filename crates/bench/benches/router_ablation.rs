//! Router ablation: every strategy registered in the standard
//! [`StrategyRegistry`], compiled over the paper's Toffoli suite on
//! Johannesburg, compared on the paper's static metrics (2-qubit gates,
//! SWAPs, duration Δ).
//!
//! Run with `cargo bench -p trios-bench --bench router_ablation`.
//! Pass `-- --test` (as CI does) to run a fast, measurement-free smoke
//! mode that only checks every registered strategy compiles the suite
//! deterministically.

use trios_bench::{geomean, rule};
use trios_benchmarks::Benchmark;
use trios_core::{Compiler, DirectionPolicy, StrategyRegistry};
use trios_topology::johannesburg;

fn compiler_for(router: &str, seed: u64) -> Compiler {
    Compiler::builder()
        .router(router)
        .direction(DirectionPolicy::MoveFirst)
        .seed(seed)
        .build()
}

/// Smoke mode for CI: compile a reduced suite under every registered
/// strategy, twice, and require byte-identical results. No measurement,
/// no tables.
fn run_test_mode() {
    let topo = johannesburg();
    let suite = [Benchmark::CnxInplace4, Benchmark::IncrementerBorrowedbit5];
    for router in StrategyRegistry::standard().names() {
        for b in suite {
            let circuit = b.build();
            let first = compiler_for(router, 0)
                .compile(&circuit, &topo)
                .unwrap_or_else(|e| panic!("{router} failed on {b}: {e}"));
            let second = compiler_for(router, 0).compile(&circuit, &topo).unwrap();
            assert_eq!(first, second, "{router} must be deterministic on {b}");
        }
        println!(
            "router {router:<18} ok (deterministic on {} circuits)",
            suite.len()
        );
    }
    println!("router_ablation --test: all registered strategies pass");
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        run_test_mode();
        return;
    }

    let topo = johannesburg();
    let suite: Vec<Benchmark> = Benchmark::toffoli_suite().collect();
    let registry = StrategyRegistry::standard();
    let routers: Vec<&str> = registry.names().collect();

    println!("Router ablation: registered strategies on the paper suite (Johannesburg, seed 0)");
    println!();
    println!(
        "{:<28} {:>12} {:>8} {:>10}",
        "router", "2q gates", "swaps", "Δ (µs)"
    );
    rule(62);
    let mut per_router_2q: Vec<Vec<f64>> = vec![Vec::new(); routers.len()];
    for (i, router) in routers.iter().enumerate() {
        let compiler = compiler_for(router, 0);
        let mut swaps = 0usize;
        let mut durations = Vec::new();
        for b in &suite {
            let compiled = compiler
                .compile(&b.build(), &topo)
                .unwrap_or_else(|e| panic!("{router} failed on {b}: {e}"));
            per_router_2q[i].push(compiled.stats.two_qubit_gates as f64);
            swaps += compiled.stats.swap_count;
            durations.push(compiled.stats.duration_us);
        }
        println!(
            "{:<28} {:>12.1} {:>8} {:>10.2}",
            router,
            geomean(&per_router_2q[i]),
            swaps,
            geomean(&durations)
        );
    }
    rule(62);
    println!();
    println!("per-benchmark 2q gates:");
    print!("{:<28}", "benchmark");
    for router in &routers {
        print!(" {router:>16}");
    }
    println!();
    rule(28 + 17 * routers.len());
    for (j, b) in suite.iter().enumerate() {
        print!("{:<28}", b.name());
        for counts in &per_router_2q {
            print!(" {:>16}", counts[j] as usize);
        }
        println!();
    }
    rule(28 + 17 * routers.len());
    println!();
    println!("expected: trios < baseline (the paper's headline); trios-lookahead tracks");
    println!("trios on pair-heavy workloads; trios-noise trades a few extra hops for");
    println!("reliable couplers, so its gate counts sit at or above plain trios");
}
