//! Reproduces the **Figure 6/8 success-probability grid** end-to-end
//! through the `trios_core::sweep` engine and emits it as
//! `BENCH_sweep.json` — the machine-readable perf/fidelity trajectory
//! later PRs regress against.
//!
//! Protocol (paper §5.1): one Toffoli per published Figure 6/7 triplet,
//! pinned to its Johannesburg qubits "to force routing to occur", all
//! three qubits measured, compiled under the baseline and Trios routers,
//! estimated under the real 2020-08-19 calibration. The trios/baseline
//! ratio rows are the Figure 8 view; the paper reports a +23% geomean
//! with a few bars below 100%.
//!
//! Run with `cargo bench -p trios-bench --bench figure_repro`.
//! Pass `-- --test` (as CI does) for a fast smoke cell: a reduced grid,
//! no file output, with the report's invariants asserted.

use trios_bench::{device, FIG67_TRIPLETS};
use trios_core::sweep::MONTE_CARLO_MAX_QUBITS;
use trios_core::{
    run_sweep, Calibration, Circuit, InitialMapping, SweepBenchmark, SweepReport, SweepSpec,
};

/// The Figure 6/8 grid as a sweep spec over the first `count` published
/// triplets.
fn fig6_fig8_spec(count: usize) -> SweepSpec {
    let benchmarks = FIG67_TRIPLETS[..count]
        .iter()
        .map(|&(c1, c2, t)| {
            let mut circuit = Circuit::with_name(3, format!("toffoli-{c1}-{c2}-{t}"));
            circuit.ccx(0, 1, 2);
            let name = circuit.name().to_string();
            let mut bench = SweepBenchmark::measured(name, circuit);
            bench.mapping = Some(InitialMapping::Fixed(vec![c1, c2, t]));
            bench
        })
        .collect();
    SweepSpec {
        benchmarks,
        devices: vec![("johannesburg".into(), device())],
        routers: vec!["baseline".into(), "trios".into()],
        // The published figures use the connectivity-aware default; the
        // decomposer axis lives in `decomposer_ablation`.
        decomposers: vec!["standard".into()],
        calibrations: vec![("now".into(), Calibration::johannesburg_2020_08_19())],
        ..SweepSpec::new()
    }
}

/// CI smoke cell: a 6-triplet grid, invariants asserted, nothing written.
fn run_test_mode() {
    let spec = fig6_fig8_spec(6);
    let report = run_sweep(&spec).unwrap();
    assert_eq!(report.cells.len(), 6 * 2, "6 triplets x 2 routers");
    assert_eq!(report.ratios.len(), 6, "one ratio row per triplet");
    for cell in &report.cells {
        assert!(cell.probability > 0.0 && cell.probability <= 1.0);
        assert_eq!(cell.measurements, 3, "all three qubits measured");
        assert_eq!(
            cell.decomposer, "standard",
            "figures use the default lowering"
        );
    }
    for row in &report.ratios {
        assert!(row.ratio > 0.0);
    }
    let geomean = report.geomean_for("trios").expect("trios ratios exist");
    assert!(geomean > 0.0);
    // The emitted JSON must satisfy the documented schema (parse back to
    // an equal report).
    let parsed = SweepReport::from_json(&report.to_json_pretty()).unwrap();
    assert_eq!(parsed, report);
    println!("figure_repro --test: 6-triplet grid ok, geomean {geomean:.3}x");
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        run_test_mode();
        return;
    }

    let spec = fig6_fig8_spec(FIG67_TRIPLETS.len());
    let report = run_sweep(&spec).unwrap();
    print!("{report}");

    // Anchor at the workspace root regardless of the bench's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, report.to_json_pretty()).expect("write BENCH_sweep.json");
    println!();
    println!(
        "wrote BENCH_sweep.json ({} cells, {} ratio rows; paper Figure 8: +23% geomean)",
        report.cells.len(),
        report.ratios.len()
    );
    // The 3-qubit experiments compile onto the full 20-qubit device, so
    // the dense Monte Carlo cross-check does not run here; point at the
    // CLI for it.
    println!(
        "monte carlo cross-check: run `trios sweep -b cnx_inplace-4 -d line:6 --shots 400` \
         (cells must have <= {MONTE_CARLO_MAX_QUBITS} compiled qubits)"
    );
}
