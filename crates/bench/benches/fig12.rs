//! Regenerates **Figure 12**: sensitivity of the Trios success-rate
//! advantage to device error rates. The x-axis scales the Johannesburg
//! error rates by an improvement factor (1× = today, 20× = the Fig. 9
//! simulation point); the y-axis is `p_trios / p_baseline` per benchmark.
//! Expected shape: enormous ratios at current error rates, exponential
//! fall-off toward 1 as errors improve, Trios never below baseline.
//!
//! Run with `cargo bench -p trios-bench --bench fig12`.

use trios_bench::{compile_benchmark, rule};
use trios_benchmarks::Benchmark;
use trios_core::{Calibration, Pipeline};
use trios_topology::johannesburg;

fn main() {
    let topo = johannesburg();
    let factors = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0];

    println!("Figure 12: p_trios/p_baseline vs error-rate improvement factor (Johannesburg)");
    print!("{:<28}", "benchmark");
    for f in factors {
        print!(" {:>11}", format!("{f}x"));
    }
    println!();
    rule(28 + factors.len() * 12);

    for b in Benchmark::toffoli_suite() {
        let circuit = b.build();
        let base = compile_benchmark(&circuit, &topo, Pipeline::Baseline, 0);
        let trios = compile_benchmark(&circuit, &topo, Pipeline::Trios, 0);
        print!("{:<28}", b.name());
        for f in factors {
            let cal = Calibration::johannesburg_2020_08_19().improved(f);
            let ratio = trios.estimate_success(&cal).probability()
                / base.estimate_success(&cal).probability();
            print!(" {:>11.3e}", ratio);
        }
        println!();
    }
    rule(28 + factors.len() * 12);
    println!(
        "dotted line: 1x = current Johannesburg errors; dashed line: 20x = Fig. 9 simulation point"
    );
    println!("expected shape: exponential fall-off toward 1.0 as errors improve; never below 1.0");
}
