//! Per-pass instrumentation dump: compiles every Table 1 benchmark under
//! both pipelines and prints one JSON line per compilation (pass wall
//! times, gate-count deltas, final stats) — machine-readable input for
//! profiling where compile time and gate count are spent.
//!
//! Run with `cargo bench -p trios-bench --bench pass_report`.

use trios_bench::{compile_benchmark_with_report, device, report_json};
use trios_benchmarks::Benchmark;
use trios_core::Pipeline;

fn main() {
    let dev = device();
    for bench in Benchmark::ALL {
        let circuit = bench.build();
        if circuit.num_qubits() > dev.num_qubits() {
            continue;
        }
        for pipeline in [Pipeline::Baseline, Pipeline::Trios] {
            let (_, report) = compile_benchmark_with_report(&circuit, &dev, pipeline, 0);
            println!(
                "{{\"benchmark\":\"{}\",\"pipeline\":\"{pipeline:?}\",\"report\":{}}}",
                bench.name(),
                report_json(&report)
            );
        }
    }
}
