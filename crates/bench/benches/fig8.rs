//! Regenerates **Figure 8**: normalized success probability
//! (Trios / baseline) for 99 random qubit triplets on Johannesburg,
//! grouped by gather distance. Paper: +23% geomean, max +286%, a few
//! bars below 100%.
//!
//! Run with `cargo bench -p trios-bench --bench fig8`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trios_bench::{calibrations, compile_single_toffoli, device, geomean, rule};
use trios_core::PaperConfig;

fn main() {
    let dev = device();
    let (cal_now, _) = calibrations();
    let mut rng = StdRng::seed_from_u64(99);

    // 99 distinct random triplets (the paper samples random locations).
    let mut triplets = Vec::new();
    while triplets.len() < 99 {
        let a = rng.gen_range(0..20);
        let b = rng.gen_range(0..20);
        let t = rng.gen_range(0..20);
        if a != b && b != t && a != t {
            triplets.push((a, b, t));
        }
    }

    let mut rows: Vec<(usize, (usize, usize, usize), f64)> = triplets
        .into_iter()
        .map(|tri| {
            let base = compile_single_toffoli(&dev, tri, PaperConfig::QiskitBaseline, 0);
            let trios = compile_single_toffoli(&dev, tri, PaperConfig::TriosEight, 0);
            let p_base = base.estimate_success(&cal_now).probability();
            let p_trios = trios.estimate_success(&cal_now).probability();
            let dist = dev.triple_distance(tri.0, tri.1, tri.2).unwrap();
            (dist, tri, p_trios / p_base)
        })
        .collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    println!("Figure 8: Toffoli success normalized to baseline (99 random triplets)");
    println!("{:<6} {:<14} {:>12}", "dist", "triplet", "p_trios/p_base");
    rule(36);
    for &(dist, (a, b, t), ratio) in &rows {
        println!(
            "{:<6} ({:>2}-{:>2}-{:>2})    {:>11.1}%",
            dist,
            a,
            b,
            t,
            100.0 * ratio
        );
    }
    rule(36);

    let ratios: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let below = ratios.iter().filter(|&&r| r < 1.0).count();
    let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "geomean: {:+.1}% (paper: +23%) | max: {:+.0}% (paper: +286%) | bars below 100%: {}/99",
        100.0 * (geomean(&ratios) - 1.0),
        100.0 * (max - 1.0),
        below
    );
}
