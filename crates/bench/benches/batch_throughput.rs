//! Batch-compilation throughput: sequential vs. parallel vs. warm-cache.
//!
//! The paper's evaluation compiles the whole Table 1 suite against many
//! device topologies; this bench measures what the batching layer buys at
//! that workload shape. Three modes over the full paper suite on
//! Johannesburg:
//!
//! * `sequential` — `Compiler::compile_batch` (one pipeline, one thread);
//! * `parallel-N` — `Compiler::compile_batch_parallel` on N workers;
//! * `warm-cache` — a pre-filled [`CompilationCache`], as hit by repeated
//!   ablation sweeps: every job is answered without running a pass.
//!
//! Run with `cargo bench -p trios-bench --bench batch_throughput`.
//!
//! Interpretation note: on a single-core machine the worker pool cannot
//! beat sequential (it only adds scheduling overhead); `parallel-N` is
//! interesting on multicore hardware, while `warm-cache` — which skips
//! compilation entirely — wins everywhere.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trios_benchmarks::Benchmark;
use trios_core::{CompilationCache, Compiler};
use trios_topology::johannesburg;

fn suite() -> Vec<trios_ir::Circuit> {
    Benchmark::ALL.into_iter().map(|b| b.build()).collect()
}

/// The paper suite repeated `times` over — the shape of an ablation sweep
/// (many topologies × many configs), large enough that worker startup is
/// noise rather than the signal.
fn sweep(times: usize) -> Vec<trios_ir::Circuit> {
    let one = suite();
    (0..times).flat_map(|_| one.clone()).collect()
}

fn batch_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch-throughput");
    group.sample_size(10);
    let circuits = sweep(8);
    let topo = johannesburg();
    let compiler = Compiler::builder().seed(0).build();

    group.bench_function("sequential", |b| {
        b.iter(|| compiler.compile_batch(&circuits, &topo).unwrap());
    });

    for jobs in [2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                compiler
                    .compile_batch_parallel(&circuits, &topo, jobs)
                    .unwrap()
            });
        });
    }

    // Warm cache: fill once, then measure pure replay throughput.
    let cache = CompilationCache::new(64);
    compiler
        .compile_batch_parallel_with_cache(&circuits, &topo, 4, Some(&cache))
        .unwrap();
    group.bench_function("warm-cache", |b| {
        b.iter(|| {
            let outcome = compiler
                .compile_batch_parallel_with_cache(&circuits, &topo, 4, Some(&cache))
                .unwrap();
            assert_eq!(outcome.report.cache_misses, 0, "warm run must be all hits");
            outcome
        });
    });
    group.finish();
}

fn cache_cold_vs_disabled(c: &mut Criterion) {
    // The cache's own overhead: compiling distinct circuits with caching
    // off (capacity 0) vs. a cold cache that stores but never hits. The
    // two should be nearly identical — hashing and insertion are noise
    // next to a compile.
    let mut group = c.benchmark_group("cache-overhead");
    group.sample_size(10);
    let circuits = suite();
    let topo = johannesburg();
    let compiler = Compiler::builder().seed(0).build();
    for (label, capacity) in [("disabled", 0usize), ("cold", 64)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    // A fresh cache per iteration keeps every lookup a miss.
                    let cache = CompilationCache::new(capacity);
                    compiler
                        .compile_batch_parallel_with_cache(&circuits, &topo, 4, Some(&cache))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_modes, cache_cold_vs_disabled);
criterion_main!(benches);
