//! Dense-kernel and stabilizer-backend throughput, emitted as
//! `BENCH_sim.json` — the simulator's perf trajectory later PRs regress
//! against.
//!
//! Three measurements:
//!
//! * **dense baseline** — the seed-era scan kernels (iterate all `2^n`
//!   indices, branch on the target bit), reimplemented here verbatim as
//!   the fixed reference.
//! * **dense stride / fused** — [`trios_sim::State`] with the bit-stride
//!   kernels, unfused and with single-qubit run fusion. The fused/baseline
//!   speedup on a 20-qubit circuit is the headline number (must be ≥ 2×).
//! * **stabilizer scaling** — tableau construction plus a canonical-form
//!   equality check at widths far beyond dense reach (25–400 qubits),
//!   demonstrating the broken 8-qubit verification wall.
//! * **sparse crossover** — [`trios_sim::SparseState`] on the
//!   toffoli-ripple shape at 8–200 qubits, against the dense backend
//!   where dense can still fit: sparse pays a constant-factor hash-map
//!   tax at small widths and is the only statevector option past ~26.
//!
//! Run with `cargo bench -p trios-bench --bench sim_kernels`.
//! Pass `-- --test` (as CI does) for a fast smoke run: a reduced width,
//! no file output, with the same invariants asserted.

use std::time::Instant;
use trios_ir::Circuit;
use trios_sim::{single_qubit_matrix, SparseState, State, Tableau, C64};

/// The seed-era single-qubit kernel: visit every amplitude index and
/// branch away the upper half of each pair.
fn naive_apply_1q(amps: &mut [C64], q: usize, m: &[[C64; 2]; 2]) {
    let mask = 1usize << q;
    for k in 0..amps.len() {
        if k & mask == 0 {
            let a = amps[k];
            let b = amps[k | mask];
            amps[k] = m[0][0] * a + m[0][1] * b;
            amps[k | mask] = m[1][0] * a + m[1][1] * b;
        }
    }
}

/// The seed-era CX kernel: scan and swap where the control bit is set.
fn naive_apply_cx(amps: &mut [C64], c: usize, t: usize) {
    let (cm, tm) = (1usize << c, 1usize << t);
    for k in 0..amps.len() {
        if k & cm != 0 && k & tm == 0 {
            amps.swap(k, k | tm);
        }
    }
}

fn naive_run(circuit: &Circuit) -> Vec<C64> {
    let mut amps = vec![C64::ZERO; 1 << circuit.num_qubits()];
    amps[0] = C64::ONE;
    for instr in circuit.iter() {
        let qs: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
        match instr.gate() {
            trios_ir::Gate::Cx => naive_apply_cx(&mut amps, qs[0], qs[1]),
            gate => {
                let m = single_qubit_matrix(gate).expect("bench circuit is 1q+cx only");
                naive_apply_1q(&mut amps, qs[0], &m);
            }
        }
    }
    amps
}

/// A deterministic `n`-qubit workload shaped like optimizer input: each
/// layer gives every qubit a run of three single-qubit gates (so fusion
/// has real runs to merge) followed by a brick-wall CX layer.
fn workload(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            c.h(q).t(q).s(q);
        }
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            c.cx(q, q + 1);
            q += 2;
        }
    }
    c
}

struct DenseResult {
    gates: usize,
    baseline_s: f64,
    stride_s: f64,
    fused_s: f64,
}

fn run_dense(n: usize, layers: usize) -> DenseResult {
    let circuit = workload(n, layers);

    let started = Instant::now();
    let reference = naive_run(&circuit);
    let baseline_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut stride = State::basis(n, 0).unwrap();
    stride.set_threads(1);
    stride.apply_circuit(&circuit).unwrap();
    let stride_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let mut fused = State::basis(n, 0).unwrap();
    fused.apply_circuit_fused(&circuit).unwrap();
    let fused_s = started.elapsed().as_secs_f64();

    // The stride kernels are bitwise-identical to the scan kernels; the
    // fused path regroups floating-point products, so it gets a tolerance.
    assert_eq!(stride.amplitudes(), &reference[..], "stride != baseline");
    let max_err = fused
        .amplitudes()
        .iter()
        .zip(&reference)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 1e-9, "fused deviates by {max_err}");

    DenseResult {
        gates: circuit.len(),
        baseline_s,
        stride_s,
        fused_s,
    }
}

struct StabPoint {
    qubits: usize,
    gates: usize,
    wall_ms: f64,
}

/// GHZ build plus a canonical-form equality check — the exact operations
/// the stabilizer fuzz backend performs per trial.
fn run_stabilizer(n: usize) -> StabPoint {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    let started = Instant::now();
    let mut a = Tableau::new(n);
    a.apply_circuit(&c).unwrap();
    let mut b = Tableau::new(n);
    b.apply_circuit(&c).unwrap();
    assert!(a.state_eq(&b), "GHZ must equal itself at n = {n}");
    StabPoint {
        qubits: n,
        gates: c.len(),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// The fuzz harness's toffoli-ripple shape at bench scale: a Hadamard
/// front on the first eight qubits (so the state actually carries
/// amplitude — on |0…0⟩ a CCX chain is a no-op) followed by a full-width
/// Toffoli ripple.
fn ripple(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n.min(8) {
        c.h(q);
    }
    for q in 0..n.saturating_sub(2) {
        c.ccx(q, q + 1, q + 2);
    }
    c
}

struct SparsePoint {
    qubits: usize,
    gates: usize,
    terms: usize,
    sparse_ms: f64,
    /// `None` past the dense cap — the widths only sparse can verify.
    dense_ms: Option<f64>,
}

fn run_sparse(n: usize) -> SparsePoint {
    let circuit = ripple(n);

    let started = Instant::now();
    let mut sparse = SparseState::zero(n).unwrap();
    sparse.apply_circuit(&circuit).unwrap();
    let sparse_ms = started.elapsed().as_secs_f64() * 1e3;

    let dense_ms = (n <= 20).then(|| {
        let started = Instant::now();
        let mut dense = State::basis(n, 0).unwrap();
        dense.apply_circuit(&circuit).unwrap();
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        let max_err = sparse
            .dense_amplitudes()
            .unwrap()
            .iter()
            .zip(dense.amplitudes())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-9, "sparse deviates from dense by {max_err}");
        elapsed
    });

    SparsePoint {
        qubits: n,
        gates: circuit.len(),
        terms: sparse.num_terms(),
        sparse_ms,
        dense_ms,
    }
}

fn run_test_mode() {
    let dense = run_dense(14, 4);
    assert!(
        dense.fused_s < dense.baseline_s,
        "fused must beat the scan baseline ({:.3}s vs {:.3}s)",
        dense.fused_s,
        dense.baseline_s
    );
    for point in [25, 50].map(run_stabilizer) {
        assert!(
            point.wall_ms < 10_000.0,
            "stabilizer too slow at {}",
            point.qubits
        );
    }
    // The sparse curve's two regimes: dense-verified at 12 qubits,
    // past-the-dense-wall at 100 (run_sparse cross-checks amplitudes
    // against the dense backend wherever dense_ms is Some).
    let narrow = run_sparse(12);
    assert!(narrow.dense_ms.is_some(), "12q must be dense-verified");
    let wide = run_sparse(100);
    assert!(wide.dense_ms.is_none());
    assert!(
        wide.sparse_ms < 10_000.0,
        "sparse too slow at 100q: {:.0}ms",
        wide.sparse_ms
    );
    assert!(wide.terms > 1, "the H front must populate the state");
    println!(
        "sim_kernels --test: 14q x {} gates, baseline {:.3}s, stride {:.3}s, fused {:.3}s; \
         sparse 100q ripple {} terms in {:.0}ms",
        dense.gates, dense.baseline_s, dense.stride_s, dense.fused_s, wide.terms, wide.sparse_ms
    );
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        run_test_mode();
        return;
    }

    let (qubits, layers) = (20, 8);
    let dense = run_dense(qubits, layers);
    let speedup_fused = dense.baseline_s / dense.fused_s;
    let speedup_stride = dense.baseline_s / dense.stride_s;
    assert!(
        speedup_fused >= 2.0,
        "fused dense throughput must be at least 2x the scan baseline, got {speedup_fused:.2}x"
    );

    let stab: Vec<StabPoint> = [25, 50, 100, 200, 400]
        .into_iter()
        .map(run_stabilizer)
        .collect();

    let sparse: Vec<SparsePoint> = [8, 12, 16, 20, 50, 100, 200]
        .into_iter()
        .map(run_sparse)
        .collect();

    let rate = |s: f64| dense.gates as f64 / s;
    let stab_json: Vec<String> = stab
        .iter()
        .map(|p| {
            format!(
                r#"    {{"qubits": {}, "gates": {}, "wall_ms": {:.2}}}"#,
                p.qubits, p.gates, p.wall_ms
            )
        })
        .collect();
    let sparse_json: Vec<String> = sparse
        .iter()
        .map(|p| {
            let dense_ms = p
                .dense_ms
                .map_or("null".to_string(), |ms| format!("{ms:.2}"));
            format!(
                r#"    {{"qubits": {}, "gates": {}, "terms": {}, "sparse_ms": {:.2}, "dense_ms": {}}}"#,
                p.qubits, p.gates, p.terms, p.sparse_ms, dense_ms
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "bench": "sim_kernels",
  "dense": {{
    "qubits": {qubits},
    "layers": {layers},
    "gates": {gates},
    "baseline_scan": {{"wall_s": {b:.4}, "gates_per_s": {br:.1}}},
    "stride": {{"wall_s": {s:.4}, "gates_per_s": {sr:.1}}},
    "stride_fused": {{"wall_s": {f:.4}, "gates_per_s": {fr:.1}}},
    "stride_over_baseline": {speedup_stride:.2},
    "fused_over_baseline": {speedup_fused:.2}
  }},
  "stabilizer_ghz_plus_canonical_eq": [
{stab_lines}
  ],
  "sparse_toffoli_ripple": [
{sparse_lines}
  ]
}}
"#,
        gates = dense.gates,
        b = dense.baseline_s,
        br = rate(dense.baseline_s),
        s = dense.stride_s,
        sr = rate(dense.stride_s),
        f = dense.fused_s,
        fr = rate(dense.fused_s),
        stab_lines = stab_json.join(",\n"),
        sparse_lines = sparse_json.join(",\n"),
    );

    // Anchor at the workspace root regardless of the bench's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!(
        "sim_kernels: {qubits}q x {} gates — baseline {:.2}s, stride {:.2}s ({speedup_stride:.1}x), \
         fused {:.2}s ({speedup_fused:.1}x); stabilizer 400q GHZ+eq {:.0}ms; \
         sparse 200q ripple {} terms in {:.0}ms",
        dense.gates,
        dense.baseline_s,
        dense.stride_s,
        dense.fused_s,
        stab.last().unwrap().wall_ms,
        sparse.last().unwrap().terms,
        sparse.last().unwrap().sparse_ms
    );
    println!("wrote BENCH_sim.json");
}
