//! Criterion benchmarks of compiler performance (not in the paper, but
//! part of evaluating this reproduction as a usable library): wall-clock
//! cost of the baseline vs Trios pipelines on representative inputs.
//!
//! Run with `cargo bench -p trios-bench --bench compiler_perf`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trios_benchmarks::Benchmark;
use trios_core::{compile, PaperConfig};
use trios_topology::{johannesburg, PaperDevice};

fn pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    let topo = johannesburg();
    for bench in [
        Benchmark::CuccaroAdder20,
        Benchmark::Grovers9,
        Benchmark::CnxDirty11,
    ] {
        let circuit = bench.build();
        for config in [PaperConfig::QiskitBaseline, PaperConfig::Trios] {
            group.bench_with_input(
                BenchmarkId::new(config.label(), bench.name()),
                &circuit,
                |b, circuit| {
                    b.iter(|| compile(circuit, &topo, &config.to_options(0)).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile-by-device");
    group.sample_size(20);
    let circuit = Benchmark::TakahashiAdder20.build();
    for device in PaperDevice::ALL {
        let topo = device.build();
        group.bench_with_input(
            BenchmarkId::from_parameter(device.label()),
            &topo,
            |b, topo| {
                b.iter(|| compile(&circuit, topo, &PaperConfig::Trios.to_options(0)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, pipelines, devices);
criterion_main!(benches);
