//! Serve-mode throughput: seeded `trios-gen` traffic replayed against an
//! in-process [`trios_server::Server`] by N concurrent clients, emitted
//! as `BENCH_serve.json` — the daemon's perf trajectory later PRs regress
//! against.
//!
//! Four measurements:
//!
//! * **cold** — every request is a distinct generated circuit, so every
//!   one pays a full compile: the pipeline-bound regime.
//! * **warm** — the identical request list again: every request hits the
//!   shared sharded cache, so this is the protocol+cache-bound regime.
//!   The warm/cold speedup is the headline number (must be ≥ 2×).
//! * **busy** — a burst at a one-slot queue with one worker must observe
//!   structured `busy` errors, never a hang.
//! * **drain** — jobs queued at shutdown are all answered before join
//!   returns.
//!
//! Run with `cargo bench -p trios-bench --bench serve_throughput`.
//! Pass `-- --test` (as CI does) for a fast smoke run: a reduced request
//! grid, no file output, with the same invariants asserted.

use std::time::Instant;
use trios_server::{Client, Server, ServerConfig};

/// Seeded request lines: `clients × per_client` distinct generated
/// circuits (families round-robin, seeds never reused), split so client
/// `c` replays slice `c`. Identical across runs — the traffic is part of
/// the benchmark definition.
fn traffic(clients: usize, per_client: usize) -> Vec<Vec<String>> {
    const FAMILIES: [&str; 4] = ["qft", "toffoli-ripple", "clifford-t", "layered"];
    (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    let n = c * per_client + i;
                    let family = FAMILIES[n % FAMILIES.len()];
                    // The routing seed varies per request: families like
                    // qft are structurally deterministic per width, so the
                    // gen seed alone would not keep cache keys distinct.
                    format!(
                        r#"{{"benchmark": "gen:{family}:{seed}", "device": "line:8", "seed": {n}}}"#,
                        seed = n / FAMILIES.len()
                    )
                })
                .collect()
        })
        .collect()
}

/// Replays each client's slice on its own connection/thread; returns the
/// wall time and the number of `"cached":true` responses.
fn replay(addr: std::net::SocketAddr, requests: &[Vec<String>]) -> (f64, u64) {
    let started = Instant::now();
    let cached: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|slice| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut cached = 0u64;
                    for params in slice {
                        let response = client.call("compile", params).expect("call");
                        assert!(
                            response.contains(r#""ok":true"#),
                            "request failed: {response}"
                        );
                        if response.contains(r#""cached":true"#) {
                            cached += 1;
                        }
                    }
                    cached
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    (started.elapsed().as_secs_f64(), cached)
}

struct Phase {
    requests: usize,
    wall_s: f64,
    rps: f64,
}

fn run_phase(addr: std::net::SocketAddr, requests: &[Vec<String>]) -> (Phase, u64) {
    let total: usize = requests.iter().map(Vec::len).sum();
    let (wall_s, cached) = replay(addr, requests);
    (
        Phase {
            requests: total,
            wall_s,
            rps: total as f64 / wall_s,
        },
        cached,
    )
}

/// The busy probe: a burst at a deliberately tiny server. Returns
/// (ok, busy) response counts; the call itself completing proves the
/// full queue rejects instead of hanging.
fn busy_probe(burst: usize) -> (u64, u64) {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0,
        allow_shutdown: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for i in 0..burst {
        client
            .send_raw(&format!(
                r#"{{"id": {i}, "method": "compile", "params": {{"benchmark": "cnx_dirty-11", "seed": {i}}}}}"#
            ))
            .expect("send");
    }
    let (mut ok, mut busy) = (0u64, 0u64);
    for _ in 0..burst {
        let response = client.read_line().expect("read");
        if response.contains(r#""ok":true"#) {
            ok += 1;
        } else {
            assert!(response.contains(r#""kind":"busy""#), "{response}");
            busy += 1;
        }
    }
    server.shutdown();
    server.join();
    (ok, busy)
}

/// The drain probe: queue `jobs` compiles on one worker, request
/// shutdown, count the answers that still arrive. Returns answered jobs.
fn drain_probe(jobs: usize) -> usize {
    let server = Server::start(ServerConfig {
        workers: 1,
        allow_shutdown: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for i in 1..=jobs {
        client
            .send_raw(&format!(
                r#"{{"id": {i}, "method": "compile", "params": {{"benchmark": "bv-20", "seed": {i}}}}}"#
            ))
            .expect("send");
    }
    client
        .send_raw(r#"{"id": 0, "method": "shutdown"}"#)
        .expect("send");
    let mut answered = 0;
    for _ in 0..=jobs {
        let response = client.read_line().expect("read");
        if response.contains(r#""cached""#) {
            assert!(response.contains(r#""ok":true"#), "{response}");
            answered += 1;
        }
    }
    server.join();
    answered
}

fn run(clients: usize, per_client: usize) -> (Phase, Phase, trios_server::ServerSnapshot) {
    let server = Server::start(ServerConfig {
        workers: 4,
        allow_shutdown: true,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let requests = traffic(clients, per_client);

    let (cold, cached_cold) = run_phase(addr, &requests);
    assert_eq!(cached_cold, 0, "cold requests are all distinct");
    let (warm, cached_warm) = run_phase(addr, &requests);
    assert_eq!(
        cached_warm as usize, warm.requests,
        "warm requests must all hit the shared cache"
    );

    let snapshot = server.snapshot();
    assert_eq!(snapshot.served, (cold.requests + warm.requests) as u64);
    server.shutdown();
    server.join();
    (cold, warm, snapshot)
}

fn run_test_mode() {
    let (cold, warm, snapshot) = run(2, 4);
    assert!(
        warm.rps > cold.rps,
        "warm replay must beat cold ({:.0} vs {:.0} rps)",
        warm.rps,
        cold.rps
    );
    assert!(snapshot.latency.p99_us >= snapshot.latency.p50_us);
    let (ok, busy) = busy_probe(16);
    assert!(ok >= 1 && busy >= 1, "burst: {ok} ok, {busy} busy");
    assert_eq!(drain_probe(3), 3, "shutdown must drain queued jobs");
    println!(
        "serve_throughput --test: cold {:.0} rps, warm {:.0} rps ({:.1}x), {} busy in burst, drain ok",
        cold.rps,
        warm.rps,
        warm.rps / cold.rps,
        busy
    );
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        run_test_mode();
        return;
    }

    let clients = 4;
    let per_client = 32;
    let (cold, warm, snapshot) = run(clients, per_client);
    let speedup = warm.rps / cold.rps;
    assert!(
        speedup >= 2.0,
        "warm replay must be at least 2x cold, got {speedup:.2}x"
    );
    let (ok, busy) = busy_probe(32);
    assert!(busy >= 1, "the burst must observe busy backpressure");
    let drain_jobs = 5;
    let drained = drain_probe(drain_jobs);
    assert_eq!(drained, drain_jobs, "shutdown must drain queued jobs");

    let phase_json = |p: &Phase| {
        format!(
            r#"{{"requests": {}, "wall_s": {:.4}, "requests_per_s": {:.1}}}"#,
            p.requests, p.wall_s, p.rps
        )
    };
    let json = format!(
        r#"{{
  "bench": "serve_throughput",
  "config": {{"clients": {clients}, "requests_per_client": {per_client}, "workers": 4, "shards": {shards}}},
  "cold": {cold_json},
  "warm": {warm_json},
  "warm_over_cold": {speedup:.2},
  "latency_us": {{"count": {lc}, "p50": {p50}, "p90": {p90}, "p99": {p99}, "max": {max}}},
  "cache": {{"hits": {hits}, "misses": {misses}}},
  "busy_burst": {{"requests": 32, "ok": {ok}, "busy": {busy}}},
  "drain": {{"queued": {drain_jobs}, "answered": {drained}}}
}}
"#,
        shards = snapshot.shards.len(),
        cold_json = phase_json(&cold),
        warm_json = phase_json(&warm),
        lc = snapshot.latency.count,
        p50 = snapshot.latency.p50_us,
        p90 = snapshot.latency.p90_us,
        p99 = snapshot.latency.p99_us,
        max = snapshot.latency.max_us,
        hits = snapshot.cache.hits,
        misses = snapshot.cache.misses,
    );

    // Anchor at the workspace root regardless of the bench's cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!(
        "serve_throughput: cold {:.0} rps, warm {:.0} rps ({speedup:.1}x), p99 {}us, \
         {busy} busy in burst, {drained}/{drain_jobs} drained",
        cold.rps, warm.rps, snapshot.latency.p99_us
    );
    println!("wrote BENCH_serve.json");
}
