//! # trios-gen — seeded generators of structured circuit families
//!
//! The paper evaluates on a fixed, hand-picked benchmark suite (Table 1);
//! this crate produces *unbounded* structured workloads so the rest of the
//! workspace — the differential fuzz harness in `trios_core::fuzz`, the
//! sweep engine, and the benches — can exercise every router and pass on
//! inputs nobody hand-picked.
//!
//! Each [`Family`] is a named generator with a fixed [parameter
//! grid](Family::grid) and a seeded [`Family::generate`]. Generation is
//! **fully deterministic**: the same `(family, params, seed)` triple
//! produces a byte-identical circuit on every platform (the workspace's
//! vendored xoshiro256++ PRNG is seed-stable), so any fuzz failure is
//! reproducible from its case name alone.
//!
//! | name             | family                                                |
//! |------------------|-------------------------------------------------------|
//! | `qft`            | textbook quantum Fourier transform (Toffoli-free)     |
//! | `qaoa`           | QAOA Max-Cut on a seeded Erdős–Rényi random graph     |
//! | `clifford-t`     | uniformly random Clifford+T circuits                  |
//! | `toffoli-ripple` | ripple-carry / CnX-style chains of overlapping CCXs   |
//! | `layered`        | layered random circuits with tunable 3q-gate density  |
//!
//! # Examples
//!
//! ```
//! use trios_gen::Family;
//!
//! // Same seed, same circuit — the determinism the fuzz harness relies on.
//! let a = Family::Layered.generate_case(42);
//! let b = Family::Layered.generate_case(42);
//! assert_eq!(a.circuit, b.circuit);
//! assert!(a.name.starts_with("layered-"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod families;

pub use families::{generate_suite, Family, GeneratedCircuit, Params};
