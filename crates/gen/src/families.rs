//! The circuit families: stable names, parameter grids, and seeded
//! generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;
use std::fmt;
use trios_benchmarks::qft;
use trios_ir::Circuit;

/// Parameters of one family instance.
///
/// Not every family reads every knob: `qft` ignores `depth` and
/// `three_q_density`, the random families ignore whichever axis their
/// grid does not vary. Unused knobs are zero in the grid entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Circuit width.
    pub qubits: usize,
    /// Family-specific depth knob: gate count for `clifford-t`, layer
    /// count for `layered` and `qaoa`, sweep count for `toffoli-ripple`.
    pub depth: usize,
    /// Probability in `[0, 1]` that a slot becomes a three-qubit gate
    /// (`layered` only).
    pub three_q_density: f64,
}

impl Params {
    /// Parameters with the density knob zeroed.
    pub fn new(qubits: usize, depth: usize) -> Self {
        Params {
            qubits,
            depth,
            three_q_density: 0.0,
        }
    }
}

/// A named, seeded generator of structured circuits.
///
/// Every variant has a stable registry [`name`](Family::name) (what
/// `trios gen`/`trios fuzz --families` accept), a fixed parameter
/// [`grid`](Family::grid), and a deterministic
/// [`generate`](Family::generate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Textbook quantum Fourier transform (Toffoli-free pair-routing
    /// stress).
    Qft,
    /// QAOA Max-Cut on a seeded Erdős–Rényi random graph (random
    /// long-range two-qubit interactions).
    Qaoa,
    /// Uniformly random Clifford+T circuits (the gate set of
    /// fault-tolerant workloads).
    CliffordT,
    /// Uniformly random pure-Clifford circuits on *wide* registers
    /// (up to 20 qubits): stabilizer-checkable at full device size, so
    /// routed-vs-input equivalence runs where statevectors cannot.
    Clifford,
    /// Ripple-carry / CnX-style chains of overlapping Toffolis (the
    /// paper's adder-shaped workloads, randomized).
    ToffoliRipple,
    /// Layered random circuits with a tunable three-qubit-gate density.
    Layered,
}

impl Family {
    /// All families, in listing order.
    pub const ALL: [Family; 6] = [
        Family::Qft,
        Family::Qaoa,
        Family::CliffordT,
        Family::Clifford,
        Family::ToffoliRipple,
        Family::Layered,
    ];

    /// The stable registry name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Qft => "qft",
            Family::Qaoa => "qaoa",
            Family::CliffordT => "clifford-t",
            Family::Clifford => "clifford",
            Family::ToffoliRipple => "toffoli-ripple",
            Family::Layered => "layered",
        }
    }

    /// Resolves a registry name back to the family.
    pub fn parse(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// One-line description for listings.
    pub fn description(self) -> &'static str {
        match self {
            Family::Qft => "quantum Fourier transform (Toffoli-free pair-routing stress)",
            Family::Qaoa => "QAOA Max-Cut on a seeded random graph",
            Family::CliffordT => "uniformly random Clifford+T circuit",
            Family::Clifford => "wide pure-Clifford circuit (stabilizer-checkable at device size)",
            Family::ToffoliRipple => "ripple-carry/CnX-style chains of overlapping Toffolis",
            Family::Layered => "layered random circuit with tunable 3q-gate density",
        }
    }

    /// The fixed parameter grid [`generate_case`](Family::generate_case)
    /// draws from. Widths stay ≤ 8 qubits so every instance fits the
    /// fuzz harness's statevector-equivalence budget — except `clifford`,
    /// whose whole point is width: its instances (up to 20 qubits) are
    /// verified by the stabilizer backend instead.
    pub fn grid(self) -> Vec<Params> {
        match self {
            Family::Qft => (3..=8).map(|n| Params::new(n, 0)).collect(),
            Family::Qaoa => (4..=8)
                .flat_map(|n| (1..=2).map(move |p| Params::new(n, p)))
                .collect(),
            Family::CliffordT => [4, 6, 8]
                .into_iter()
                .flat_map(|n| [20, 40].into_iter().map(move |d| Params::new(n, d)))
                .collect(),
            Family::Clifford => [8, 12, 16, 20]
                .into_iter()
                .flat_map(|n| [40, 80].into_iter().map(move |d| Params::new(n, d)))
                .collect(),
            Family::ToffoliRipple => [4, 6, 8]
                .into_iter()
                .flat_map(|n| (1..=3).map(move |s| Params::new(n, s)))
                .collect(),
            Family::Layered => [4, 6, 8]
                .into_iter()
                .flat_map(|n| {
                    [(8, 0.0), (8, 0.25), (16, 0.25), (16, 0.5)]
                        .into_iter()
                        .map(move |(d, t)| Params {
                            qubits: n,
                            depth: d,
                            three_q_density: t,
                        })
                })
                .collect(),
        }
    }

    /// The stable instance name for `(params, seed)` — also the circuit
    /// name [`generate`](Family::generate) assigns, so a fuzz failure's
    /// case name alone identifies the exact reproducing input.
    pub fn instance_name(self, params: &Params, seed: u64) -> String {
        match self {
            Family::Qft => format!("qft-n{}-s{seed}", params.qubits),
            Family::Layered => format!(
                "layered-n{}-d{}-t{:02}-s{seed}",
                params.qubits,
                params.depth,
                (params.three_q_density * 100.0).round() as u32
            ),
            _ => format!(
                "{}-n{}-d{}-s{seed}",
                self.name(),
                params.qubits,
                params.depth
            ),
        }
    }

    /// Generates the instance for `(params, seed)`.
    ///
    /// Deterministic: the same triple always produces a byte-identical
    /// circuit. The result is unitary (no measurements) so it can be
    /// statevector-checked directly.
    ///
    /// # Panics
    ///
    /// Panics if `params.qubits < 3` (every family needs room for at
    /// least one three-qubit gate or a nontrivial interaction graph).
    pub fn generate(self, params: &Params, seed: u64) -> Circuit {
        assert!(params.qubits >= 3, "families need at least 3 qubits");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut circuit = match self {
            Family::Qft => qft(params.qubits),
            Family::Qaoa => qaoa_random_graph(params.qubits, params.depth.max(1), &mut rng),
            Family::CliffordT => random_clifford_t(params.qubits, params.depth.max(1), &mut rng),
            Family::Clifford => random_clifford(params.qubits, params.depth.max(1), &mut rng),
            Family::ToffoliRipple => toffoli_ripple(params.qubits, params.depth.max(1), &mut rng),
            Family::Layered => layered(
                params.qubits,
                params.depth.max(1),
                params.three_q_density,
                &mut rng,
            ),
        };
        circuit.set_name(self.instance_name(params, seed));
        circuit
    }

    /// Generates one case for `seed` alone: the seed picks a grid entry
    /// (uniformly, via a SplitMix64 scramble so consecutive seeds spread
    /// over the grid) and then drives generation.
    pub fn generate_case(self, seed: u64) -> GeneratedCircuit {
        let grid = self.grid();
        let params = grid[(splitmix64(seed) % grid.len() as u64) as usize];
        let circuit = self.generate(&params, seed);
        GeneratedCircuit {
            name: circuit.name().to_string(),
            family: self,
            params,
            seed,
            circuit,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated instance: the circuit plus everything needed to
/// regenerate it.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedCircuit {
    /// The stable instance name (`family-n…-s<seed>`).
    pub name: String,
    /// The family that produced it.
    pub family: Family,
    /// The grid entry used.
    pub params: Params,
    /// The generation seed.
    pub seed: u64,
    /// The circuit itself.
    pub circuit: Circuit,
}

/// Generates `cases` circuits by cycling through `families` with seeds
/// `seed, seed+1, …` — the fuzz harness's case stream.
///
/// # Panics
///
/// Panics if `families` is empty.
pub fn generate_suite(families: &[Family], cases: usize, seed: u64) -> Vec<GeneratedCircuit> {
    assert!(!families.is_empty(), "need at least one family");
    (0..cases)
        .map(|i| families[i % families.len()].generate_case(seed.wrapping_add(i as u64)))
        .collect()
}

/// SplitMix64 scramble (the same mix the vendored StdRng seeds with), so
/// consecutive case seeds land on unrelated grid entries.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `k` distinct qubit indices below `n`.
fn distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let q = rng.gen_range(0..n);
        if !picked.contains(&q) {
            picked.push(q);
        }
    }
    picked
}

/// QAOA Max-Cut on an Erdős–Rényi `G(n, 1/2)` graph: the edge set is
/// drawn once, then `layers` alternations of the cost unitary
/// (`cx·rz·cx` per edge) and the `rx` mixer, with per-layer random
/// angles. Isolated graphs still produce the `h` + mixer skeleton.
fn qaoa_random_graph(n: usize, layers: usize, rng: &mut StdRng) -> Circuit {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(0.5) {
                edges.push((i, j));
            }
        }
    }
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..layers {
        let gamma = rng.gen_range(0.0..PI);
        let beta = rng.gen_range(0.0..PI);
        for &(i, j) in &edges {
            c.cx(i, j).rz(2.0 * gamma, j).cx(i, j);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// `gates` uniformly random Clifford+T gates: 60% single-qubit draws
/// from {H, S, S†, T, T†, X, Z}, 40% two-qubit draws from {CX, CZ} on
/// distinct operands.
fn random_clifford_t(n: usize, gates: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        if rng.gen_bool(0.6) {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..7) {
                0 => c.h(q),
                1 => c.s(q),
                2 => c.sdg(q),
                3 => c.t(q),
                4 => c.tdg(q),
                5 => c.x(q),
                _ => c.z(q),
            };
        } else {
            let pair = distinct(rng, n, 2);
            if rng.gen_bool(0.5) {
                c.cx(pair[0], pair[1]);
            } else {
                c.cz(pair[0], pair[1]);
            }
        }
    }
    c
}

/// `gates` uniformly random Clifford gates: the `clifford-t` mix with
/// the T/T† draws removed — 60% single-qubit from {H, S, S†, X, Z}, 40%
/// two-qubit from {CX, CZ} on distinct operands. Every instance is
/// exactly verifiable by the stabilizer backend at any width.
fn random_clifford(n: usize, gates: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        if rng.gen_bool(0.6) {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..5) {
                0 => c.h(q),
                1 => c.s(q),
                2 => c.sdg(q),
                3 => c.x(q),
                _ => c.z(q),
            };
        } else {
            let pair = distinct(rng, n, 2);
            if rng.gen_bool(0.5) {
                c.cx(pair[0], pair[1]);
            } else {
                c.cz(pair[0], pair[1]);
            }
        }
    }
    c
}

/// `sweeps` ripple passes of overlapping Toffolis (up or down the
/// register, seeded), each followed by a random carry CNOT — the shape
/// of the paper's CnX ladders and ripple-carry adders.
fn toffoli_ripple(n: usize, sweeps: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..sweeps {
        if rng.gen_bool(0.5) {
            for i in 0..n - 2 {
                c.ccx(i, i + 1, i + 2);
            }
        } else {
            for i in (0..n - 2).rev() {
                c.ccx(i + 2, i + 1, i);
            }
        }
        let a = rng.gen_range(0..n - 1);
        c.cx(a, a + 1);
    }
    c
}

/// `layers` layers packed greedily with random gates on disjoint
/// operands: each free slot becomes a three-qubit gate (CCX/CCZ/CSWAP)
/// with probability `density`, otherwise a CX/CZ when a partner is
/// free, otherwise a random single-qubit gate.
fn layered(n: usize, layers: usize, density: f64, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        let mut free: Vec<usize> = (0..n).collect();
        while let Some(&q) = free.first() {
            if free.len() >= 3 && rng.gen_bool(density) {
                let mut rest = free[1..].to_vec();
                let i = rng.gen_range(0..rest.len());
                let a = rest.remove(i);
                let b = rest[rng.gen_range(0..rest.len())];
                match rng.gen_range(0..3) {
                    0 => c.ccx(q, a, b),
                    1 => c.ccz(q, a, b),
                    _ => c.cswap(q, a, b),
                };
                free.retain(|&x| x != q && x != a && x != b);
            } else if free.len() >= 2 && rng.gen_bool(0.6) {
                let a = free[1 + rng.gen_range(0..free.len() - 1)];
                if rng.gen_bool(0.5) {
                    c.cx(q, a);
                } else {
                    c.cz(q, a);
                }
                free.retain(|&x| x != q && x != a);
            } else {
                match rng.gen_range(0..4) {
                    0 => c.h(q),
                    1 => c.t(q),
                    2 => c.s(q),
                    _ => c.rz(rng.gen_range(0.0..PI), q),
                };
                free.retain(|&x| x != q);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_valid_nonempty_circuits_over_its_grid() {
        for family in Family::ALL {
            let grid = family.grid();
            assert!(!grid.is_empty(), "{family}");
            for (i, params) in grid.iter().enumerate() {
                let c = family.generate(params, i as u64);
                assert!(c.validate().is_ok(), "{family} {params:?}");
                assert!(!c.is_empty(), "{family} {params:?}");
                assert_eq!(c.num_qubits(), params.qubits, "{family} {params:?}");
                let cap = if family == Family::Clifford { 20 } else { 8 };
                assert!(
                    c.num_qubits() <= cap,
                    "{family} grid must stay within its verification budget"
                );
                assert_eq!(c.name(), family.instance_name(params, i as u64));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for family in Family::ALL {
            let a = family.generate_case(7);
            let b = family.generate_case(7);
            assert_eq!(a, b, "{family}");
            assert_eq!(a.circuit, b.circuit, "{family}");
        }
    }

    #[test]
    fn random_families_vary_with_the_seed() {
        for family in [
            Family::Qaoa,
            Family::CliffordT,
            Family::Clifford,
            Family::Layered,
        ] {
            let params = family.grid()[0];
            let a = family.generate(&params, 1);
            let b = family.generate(&params, 2);
            assert_ne!(a.instructions(), b.instructions(), "{family}");
        }
    }

    #[test]
    fn names_parse_back_and_are_stable() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.name()), Some(family));
            assert!(!family.description().is_empty());
        }
        assert_eq!(Family::parse("nope"), None);
        let case = Family::Layered.generate_case(42);
        assert!(case.name.starts_with("layered-n"), "{}", case.name);
        assert!(case.name.ends_with("-s42"), "{}", case.name);
        assert_eq!(case.circuit.name(), case.name);
    }

    #[test]
    fn layered_density_controls_three_qubit_gates() {
        let zero = Family::Layered.generate(
            &Params {
                qubits: 8,
                depth: 16,
                three_q_density: 0.0,
            },
            3,
        );
        assert_eq!(zero.counts().three_qubit, 0);
        let dense = Family::Layered.generate(
            &Params {
                qubits: 8,
                depth: 16,
                three_q_density: 1.0,
            },
            3,
        );
        assert!(dense.counts().three_qubit >= 16, "one 3q gate per layer");
    }

    #[test]
    fn toffoli_ripple_contains_toffolis_and_qaoa_does_not() {
        let ripple = Family::ToffoliRipple.generate(&Params::new(6, 2), 0);
        assert!(ripple.counts().ccx > 0);
        let qaoa = Family::Qaoa.generate(&Params::new(6, 2), 0);
        assert_eq!(qaoa.counts().three_qubit, 0);
        assert!(
            qaoa.counts().two_qubit > 0,
            "G(6, 1/2) is nonempty at seed 0"
        );
    }

    #[test]
    fn suite_cycles_families_and_advances_seeds() {
        let suite = generate_suite(&[Family::Qft, Family::Layered], 5, 10);
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].family, Family::Qft);
        assert_eq!(suite[1].family, Family::Layered);
        assert_eq!(suite[2].family, Family::Qft);
        for (i, case) in suite.iter().enumerate() {
            assert_eq!(case.seed, 10 + i as u64);
        }
        // Regenerating the suite is byte-identical.
        assert_eq!(
            suite,
            generate_suite(&[Family::Qft, Family::Layered], 5, 10)
        );
    }

    #[test]
    fn distinct_seeds_produce_distinct_structural_hashes_on_random_families() {
        // The cache-soundness property the fuzz harness relies on: cases
        // with different seeds must not collide into one cache entry.
        let mut hashes = std::collections::HashSet::new();
        for seed in 0..64 {
            let case = Family::Layered.generate_case(seed);
            assert!(
                hashes.insert(case.circuit.structural_hash()),
                "seed {seed} collided"
            );
        }
    }

    #[test]
    fn clifford_family_is_pure_clifford_and_wide() {
        use trios_ir::Gate;
        for params in Family::Clifford.grid() {
            let c = Family::Clifford.generate(&params, 3);
            assert!(params.qubits >= 8, "clifford exists to be wide");
            assert!(
                c.iter().all(|i| !matches!(i.gate(), Gate::T | Gate::Tdg)),
                "clifford family must not emit T gates"
            );
        }
        // The grid reaches the paper's full Johannesburg width.
        assert!(Family::Clifford.grid().iter().any(|p| p.qubits == 20));
    }

    #[test]
    fn qft_family_matches_the_benchmark_generator() {
        let params = Params::new(5, 0);
        let ours = Family::Qft.generate(&params, 9);
        let reference = trios_benchmarks::qft(5);
        assert_eq!(ours.instructions(), reference.instructions());
    }

    #[test]
    fn narrow_widths_are_rejected() {
        assert!(
            std::panic::catch_unwind(|| Family::Layered.generate(&Params::new(2, 4), 0)).is_err()
        );
    }
}
