//! The [`Qubit`] index newtype.

use std::fmt;

/// An index identifying one qubit of a circuit or device.
///
/// A `Qubit` is a plain index; whether it denotes a *logical* (program)
/// qubit or a *physical* (hardware) qubit depends on the circuit it appears
/// in. Circuits produced by the routing passes are over physical qubits and
/// carry the logical-to-physical [layout] alongside.
///
/// [layout]: https://docs.rs/trios-route
///
/// # Examples
///
/// ```
/// use trios_ir::Qubit;
///
/// let q = Qubit::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(q.to_string(), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Qubit(u32);

impl Qubit {
    /// Creates a qubit with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (circuits anywhere near that
    /// size are far outside this library's simulation range).
    #[inline]
    pub fn new(index: usize) -> Self {
        Qubit(u32::try_from(index).expect("qubit index exceeds u32::MAX"))
    }

    /// Returns the index as a `usize`, suitable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(index: u32) -> Self {
        Qubit(index)
    }
}

impl From<usize> for Qubit {
    fn from(index: usize) -> Self {
        Qubit::new(index)
    }
}

impl From<Qubit> for usize {
    fn from(qubit: Qubit) -> Self {
        qubit.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 7, 19, 1000] {
            assert_eq!(Qubit::new(i).index(), i);
        }
    }

    #[test]
    fn display_uses_q_prefix() {
        assert_eq!(Qubit::new(0).to_string(), "q0");
        assert_eq!(Qubit::new(19).to_string(), "q19");
    }

    #[test]
    fn conversions() {
        let q: Qubit = 5usize.into();
        assert_eq!(q, Qubit::new(5));
        let q: Qubit = 7u32.into();
        assert_eq!(q.index(), 7);
        let i: usize = Qubit::new(9).into();
        assert_eq!(i, 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Qubit::new(1) < Qubit::new(2));
        assert_eq!(Qubit::default(), Qubit::new(0));
    }
}
