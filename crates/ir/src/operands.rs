//! [`Operands`]: the inline list of qubits an instruction acts on.

use crate::Qubit;
use std::fmt;
use std::ops::Index;

/// The qubits an instruction acts on: one, two, or three, stored inline.
///
/// Control qubits come first, the target last, matching the OpenQASM
/// convention (`ccx control1, control2, target`).
///
/// # Examples
///
/// ```
/// use trios_ir::{Operands, Qubit};
///
/// let ops = Operands::three(Qubit::new(0), Qubit::new(1), Qubit::new(2));
/// assert_eq!(ops.len(), 3);
/// assert_eq!(ops[2], Qubit::new(2));
/// assert!(ops.contains(Qubit::new(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operands {
    qubits: [Qubit; 3],
    len: u8,
}

impl Operands {
    /// Operand list for a single-qubit instruction.
    pub fn one(q: Qubit) -> Self {
        Operands {
            qubits: [q, Qubit::new(0), Qubit::new(0)],
            len: 1,
        }
    }

    /// Operand list for a two-qubit instruction (control first).
    pub fn two(a: Qubit, b: Qubit) -> Self {
        Operands {
            qubits: [a, b, Qubit::new(0)],
            len: 2,
        }
    }

    /// Operand list for a three-qubit instruction (controls first).
    pub fn three(a: Qubit, b: Qubit, c: Qubit) -> Self {
        Operands {
            qubits: [a, b, c],
            len: 3,
        }
    }

    /// Builds an operand list from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` has length 0 or greater than 3.
    pub fn from_slice(slice: &[Qubit]) -> Self {
        match *slice {
            [a] => Operands::one(a),
            [a, b] => Operands::two(a, b),
            [a, b, c] => Operands::three(a, b, c),
            _ => panic!("operand count must be 1..=3, got {}", slice.len()),
        }
    }

    /// Number of operands (1, 2, or 3).
    #[allow(clippy::len_without_is_empty)] // operands are never empty
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// View of the operands as a slice.
    pub fn as_slice(&self) -> &[Qubit] {
        &self.qubits[..self.len as usize]
    }

    /// Iterator over the operands.
    pub fn iter(&self) -> std::slice::Iter<'_, Qubit> {
        self.as_slice().iter()
    }

    /// `true` if `q` is one of the operands.
    pub fn contains(&self, q: Qubit) -> bool {
        self.as_slice().contains(&q)
    }

    /// `true` if no qubit appears twice.
    pub fn are_distinct(&self) -> bool {
        let s = self.as_slice();
        match s.len() {
            1 => true,
            2 => s[0] != s[1],
            3 => s[0] != s[1] && s[0] != s[2] && s[1] != s[2],
            _ => unreachable!(),
        }
    }

    /// Returns a copy with every qubit replaced by `f(qubit)`.
    pub fn map(&self, mut f: impl FnMut(Qubit) -> Qubit) -> Self {
        let mut out = *self;
        for q in out.qubits[..out.len as usize].iter_mut() {
            *q = f(*q);
        }
        out
    }

    /// The largest qubit index among the operands.
    pub fn max_index(&self) -> usize {
        self.iter().map(|q| q.index()).max().expect("non-empty")
    }
}

impl Index<usize> for Operands {
    type Output = Qubit;

    fn index(&self, index: usize) -> &Qubit {
        &self.as_slice()[index]
    }
}

impl<'a> IntoIterator for &'a Operands {
    type Item = &'a Qubit;
    type IntoIter = std::slice::Iter<'a, Qubit>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for Operands {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn constructors_and_len() {
        assert_eq!(Operands::one(q(4)).len(), 1);
        assert_eq!(Operands::two(q(1), q(2)).len(), 2);
        assert_eq!(Operands::three(q(1), q(2), q(3)).len(), 3);
    }

    #[test]
    fn as_slice_preserves_order() {
        let ops = Operands::three(q(5), q(1), q(9));
        assert_eq!(ops.as_slice(), &[q(5), q(1), q(9)]);
        assert_eq!(ops[0], q(5));
        assert_eq!(ops[2], q(9));
    }

    #[test]
    fn from_slice_round_trips() {
        for slice in [vec![q(1)], vec![q(1), q(2)], vec![q(3), q(2), q(1)]] {
            assert_eq!(Operands::from_slice(&slice).as_slice(), slice.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "operand count")]
    fn from_slice_rejects_empty() {
        Operands::from_slice(&[]);
    }

    #[test]
    fn distinctness() {
        assert!(Operands::three(q(0), q(1), q(2)).are_distinct());
        assert!(!Operands::two(q(3), q(3)).are_distinct());
        assert!(!Operands::three(q(0), q(1), q(0)).are_distinct());
    }

    #[test]
    fn map_applies_to_all() {
        let ops = Operands::three(q(0), q(1), q(2)).map(|x| Qubit::new(x.index() + 10));
        assert_eq!(ops.as_slice(), &[q(10), q(11), q(12)]);
    }

    #[test]
    fn display_is_comma_separated() {
        assert_eq!(Operands::three(q(0), q(1), q(2)).to_string(), "q0, q1, q2");
    }

    #[test]
    fn contains_and_max() {
        let ops = Operands::two(q(7), q(3));
        assert!(ops.contains(q(7)));
        assert!(!ops.contains(q(4)));
        assert_eq!(ops.max_index(), 7);
    }
}
