//! [`Circuit`]: an ordered list of instructions over a fixed set of qubits.

use crate::{hash as fnv, CircuitError, Gate, GateCounts, Instruction, Qubit};
use std::fmt;

/// A quantum circuit: `num_qubits` qubit lines and an ordered instruction
/// list.
///
/// `Circuit` is the common currency of every compiler pass in this
/// workspace. Builder methods ([`h`](Circuit::h), [`cx`](Circuit::cx),
/// [`ccx`](Circuit::ccx), …) append gates and return `&mut Self` so circuits
/// can be written fluently:
///
/// ```
/// use trios_ir::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).ccx(0, 1, 2);
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.counts().ccx, 1);
/// ```
///
/// Whether qubit indices denote logical or physical qubits depends on which
/// pass produced the circuit; routed circuits are physical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    name: String,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            name: String::new(),
            instructions: Vec::new(),
        }
    }

    /// Creates an empty named circuit (names show up in reports and errors).
    pub fn with_name(num_qubits: usize, name: impl Into<String>) -> Self {
        Circuit {
            num_qubits,
            name: name.into(),
            instructions: Vec::new(),
        }
    }

    /// Builds a circuit from parts, validating each instruction.
    ///
    /// # Errors
    ///
    /// Returns an error if any instruction references a qubit `>=
    /// num_qubits`.
    pub fn from_instructions(
        num_qubits: usize,
        instructions: impl IntoIterator<Item = Instruction>,
    ) -> Result<Self, CircuitError> {
        let mut c = Circuit::new(num_qubits);
        for instr in instructions {
            c.try_push(instr)?;
        }
        Ok(c)
    }

    /// The circuit name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubit lines.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterator over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Appends an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction references a qubit outside the circuit.
    /// Use [`try_push`](Circuit::try_push) for a fallible variant.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.try_push(instruction)
            .unwrap_or_else(|e| panic!("invalid instruction: {e}"));
        self
    }

    /// Appends an instruction, validating qubit bounds.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if an operand index is
    /// `>= self.num_qubits()`.
    pub fn try_push(&mut self, instruction: Instruction) -> Result<(), CircuitError> {
        if let Some(q) = instruction
            .qubits()
            .iter()
            .find(|q| q.index() >= self.num_qubits)
        {
            return Err(CircuitError::QubitOutOfRange {
                instruction: self.instructions.len(),
                qubit: q.index(),
                num_qubits: self.num_qubits,
            });
        }
        self.instructions.push(instruction);
        Ok(())
    }

    /// Appends `gate` applied to `qubits` (given as plain indices).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, duplicate operands, or out-of-range qubits.
    pub fn apply(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        let qs: Vec<Qubit> = qubits.iter().copied().map(Qubit::new).collect();
        self.push(Instruction::new(gate, &qs))
    }

    /// Appends all instructions of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is wider than `self`.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        for instr in other.iter() {
            self.push(*instr);
        }
        self
    }

    /// Appends `other` with its qubit `i` relabelled to `map[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WidthMismatch`] if `map` is shorter than
    /// `other`'s width, or [`CircuitError::QubitOutOfRange`] if a mapped
    /// index falls outside `self`.
    pub fn append_mapped(&mut self, other: &Circuit, map: &[usize]) -> Result<(), CircuitError> {
        if map.len() < other.num_qubits {
            return Err(CircuitError::WidthMismatch {
                expected: other.num_qubits,
                actual: map.len(),
            });
        }
        for instr in other.iter() {
            self.try_push(instr.map_qubits(|q| Qubit::new(map[q.index()])))?;
        }
        Ok(())
    }

    /// Returns a copy with every qubit `i` relabelled to `map[i]`, over
    /// `new_width` qubits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`append_mapped`](Circuit::append_mapped).
    pub fn remapped(&self, new_width: usize, map: &[usize]) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::with_name(new_width, self.name.clone());
        out.append_mapped(self, map)?;
        Ok(out)
    }

    /// The inverse circuit: reversed instruction order, each gate inverted.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotUnitary`] if the circuit contains a
    /// measurement.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::with_name(self.num_qubits, self.name.clone());
        for (i, instr) in self.instructions.iter().enumerate().rev() {
            let inv = instr
                .inverse()
                .ok_or(CircuitError::NotUnitary { instruction: i })?;
            out.instructions.push(inv);
        }
        Ok(out)
    }

    /// Removes all instructions, keeping the width and name.
    pub fn clear(&mut self) {
        self.instructions.clear();
    }

    // ------------------------------------------------------------------
    // Gate builder methods
    // ------------------------------------------------------------------

    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::H, &[q])
    }

    /// Appends a Pauli X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::X, &[q])
    }

    /// Appends a Pauli Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Y, &[q])
    }

    /// Appends a Pauli Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Z, &[q])
    }

    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::S, &[q])
    }

    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Sdg, &[q])
    }

    /// Appends a T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::T, &[q])
    }

    /// Appends a T† gate on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Tdg, &[q])
    }

    /// Appends a √X gate on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Sx, &[q])
    }

    /// Appends an Rx rotation on `q`.
    pub fn rx(&mut self, angle: f64, q: usize) -> &mut Self {
        self.apply(Gate::Rx(angle), &[q])
    }

    /// Appends an Ry rotation on `q`.
    pub fn ry(&mut self, angle: f64, q: usize) -> &mut Self {
        self.apply(Gate::Ry(angle), &[q])
    }

    /// Appends an Rz rotation on `q`.
    pub fn rz(&mut self, angle: f64, q: usize) -> &mut Self {
        self.apply(Gate::Rz(angle), &[q])
    }

    /// Appends a `u1(λ)` phase gate on `q`.
    pub fn u1(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.apply(Gate::U1(lambda), &[q])
    }

    /// Appends a `u2(φ, λ)` gate on `q`.
    pub fn u2(&mut self, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.apply(Gate::U2(phi, lambda), &[q])
    }

    /// Appends a `u3(θ, φ, λ)` gate on `q`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.apply(Gate::U3(theta, phi, lambda), &[q])
    }

    /// Appends an `X^t` fractional-X gate on `q`.
    pub fn xpow(&mut self, t: f64, q: usize) -> &mut Self {
        self.apply(Gate::Xpow(t), &[q])
    }

    /// Appends a controlled `X^t` with control `c` and target `t_q`.
    pub fn cxpow(&mut self, t: f64, c: usize, t_q: usize) -> &mut Self {
        self.apply(Gate::Cxpow(t), &[c, t_q])
    }

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.apply(Gate::Cx, &[c, t])
    }

    /// Appends a CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Cz, &[a, b])
    }

    /// Appends a controlled-phase `cp(λ)` between `a` and `b`.
    pub fn cp(&mut self, lambda: f64, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Cp(lambda), &[a, b])
    }

    /// Appends a SWAP between `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Swap, &[a, b])
    }

    /// Appends a Toffoli with controls `c1`, `c2` and target `t`.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.apply(Gate::Ccx, &[c1, c2, t])
    }

    /// Appends a doubly-controlled Z on `a`, `b`, `c` (symmetric).
    pub fn ccz(&mut self, a: usize, b: usize, c: usize) -> &mut Self {
        self.apply(Gate::Ccz, &[a, b, c])
    }

    /// Appends a Fredkin gate: control `c`, swapped pair `a`, `b`.
    pub fn cswap(&mut self, c: usize, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Cswap, &[c, a, b])
    }

    /// Appends a measurement of `q`.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Measure, &[q])
    }

    /// Appends measurements of every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.measure(q);
        }
        self
    }

    // ------------------------------------------------------------------
    // Analysis
    // ------------------------------------------------------------------

    /// Gate-count summary.
    pub fn counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for instr in self.iter() {
            counts.record(instr.gate());
        }
        counts
    }

    /// Number of two-qubit gates (the paper's primary static metric).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.counts().two_qubit
    }

    /// Circuit depth in gate layers: the longest chain of instructions that
    /// share qubits. Measurements count as a layer.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for instr in self.iter() {
            let start = instr
                .qubits()
                .iter()
                .map(|q| level[q.index()])
                .max()
                .unwrap_or(0);
            for q in instr.qubits() {
                level[q.index()] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// `true` if every gate is in the hardware-supported set (1q gates, CX,
    /// measurement): the postcondition of a complete compilation pipeline.
    pub fn is_hardware_lowered(&self) -> bool {
        self.iter().all(|i| i.gate().is_hardware_supported())
    }

    /// The set of qubits that are actually touched by at least one
    /// instruction, in ascending order.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for instr in self.iter() {
            for q in instr.qubits() {
                used[q.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(i, u)| u.then_some(i))
            .collect()
    }

    /// A 64-bit FNV-1a hash of the circuit's structure: its width and the
    /// exact instruction sequence (gate mnemonic, exact parameter bits,
    /// operand order).
    ///
    /// The circuit *name* is deliberately excluded — two identically-built
    /// circuits hash equal however they are labelled — and the hash is a
    /// pure function of the structure (no pointer or random state), so it
    /// is stable across runs, processes, and platforms. This makes it
    /// usable as a compilation-cache key: equal hashes mean "same program
    /// to every compiler pass" (up to the negligible 64-bit collision
    /// probability).
    pub fn structural_hash(&self) -> u64 {
        let mut h = fnv::OFFSET;
        h = fnv::write_u64(h, self.num_qubits as u64);
        h = fnv::write_u64(h, self.instructions.len() as u64);
        for instr in &self.instructions {
            h = fnv::write_bytes(h, instr.gate().name().as_bytes());
            for p in instr.gate().params() {
                h = fnv::write_u64(h, p.to_bits());
            }
            for q in instr.qubits() {
                h = fnv::write_u64(h, q.index() as u64);
            }
        }
        h
    }

    /// Validates every instruction against the circuit width.
    ///
    /// Circuits built through the public API are valid by construction; this
    /// re-check is useful after deserialization or manual surgery.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for (i, instr) in self.iter().enumerate() {
            if !instr.operands().are_distinct() {
                return Err(CircuitError::DuplicateOperand { instruction: i });
            }
            if let Some(q) = instr.qubits().iter().find(|q| q.index() >= self.num_qubits) {
                return Err(CircuitError::QubitOutOfRange {
                    instruction: i,
                    qubit: q.index(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            writeln!(f, "circuit on {} qubits:", self.num_qubits)?;
        } else {
            writeln!(f, "{} ({} qubits):", self.name, self.num_qubits)?;
        }
        for instr in self.iter() {
            writeln!(f, "  {instr}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_appends_in_order() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).measure(2);
        assert_eq!(c.len(), 4);
        assert_eq!(c.instructions()[0].gate(), Gate::H);
        assert_eq!(c.instructions()[3].gate(), Gate::Measure);
    }

    #[test]
    #[should_panic(expected = "invalid instruction")]
    fn push_rejects_out_of_range() {
        Circuit::new(2).ccx(0, 1, 2);
    }

    #[test]
    fn try_push_returns_error() {
        let mut c = Circuit::new(1);
        let err = c
            .try_push(Instruction::new(Gate::Cx, &[Qubit::new(0), Qubit::new(1)]))
            .unwrap_err();
        assert!(matches!(
            err,
            CircuitError::QubitOutOfRange { qubit: 1, .. }
        ));
    }

    #[test]
    fn counts_and_two_qubit_metric() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).swap(2, 3).ccx(0, 1, 2);
        let counts = c.counts();
        assert_eq!(counts.two_qubit, 3);
        assert_eq!(counts.cx, 2);
        assert_eq!(counts.swap, 1);
        assert_eq!(counts.ccx, 1);
        assert_eq!(c.two_qubit_gate_count(), 3);
    }

    #[test]
    fn depth_tracks_qubit_conflicts() {
        let mut c = Circuit::new(4);
        // Layer 1: h(0), h(2); Layer 2: cx(0,1), cx(2,3); Layer 3: cx(1,2).
        c.h(0).h(2).cx(0, 1).cx(2, 3).cx(1, 2);
        assert_eq!(c.depth(), 3);
        assert_eq!(Circuit::new(5).depth(), 0);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cx(0, 1);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.instructions()[0].gate(), Gate::Cx);
        assert_eq!(inv.instructions()[1].gate(), Gate::Tdg);
        assert_eq!(inv.instructions()[2].gate(), Gate::H);
    }

    #[test]
    fn inverse_fails_on_measurement() {
        let mut c = Circuit::new(1);
        c.measure(0);
        assert!(matches!(
            c.inverse().unwrap_err(),
            CircuitError::NotUnitary { instruction: 0 }
        ));
    }

    #[test]
    fn append_mapped_relabels() {
        let mut inner = Circuit::new(2);
        inner.cx(0, 1);
        let mut outer = Circuit::new(5);
        outer.append_mapped(&inner, &[3, 4]).unwrap();
        assert_eq!(
            outer.instructions()[0].qubits(),
            &[Qubit::new(3), Qubit::new(4)]
        );
    }

    #[test]
    fn append_mapped_rejects_short_map() {
        let mut inner = Circuit::new(3);
        inner.ccx(0, 1, 2);
        let mut outer = Circuit::new(5);
        assert!(matches!(
            outer.append_mapped(&inner, &[0, 1]).unwrap_err(),
            CircuitError::WidthMismatch { .. }
        ));
    }

    #[test]
    fn hardware_lowered_predicate() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).measure(0);
        assert!(c.is_hardware_lowered());
        c.ccx(0, 1, 2);
        assert!(!c.is_hardware_lowered());
    }

    #[test]
    fn active_qubits_skips_untouched() {
        let mut c = Circuit::new(5);
        c.cx(1, 3);
        assert_eq!(c.active_qubits(), vec![1, 3]);
    }

    #[test]
    fn measure_all_touches_everything() {
        let mut c = Circuit::new(3);
        c.measure_all();
        assert_eq!(c.counts().measure, 3);
        assert_eq!(c.active_qubits(), vec![0, 1, 2]);
    }

    #[test]
    fn validate_passes_for_builder_circuits() {
        let mut c = Circuit::new(3);
        c.h(0).ccx(0, 1, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn display_lists_instructions() {
        let mut c = Circuit::with_name(2, "demo");
        c.cx(0, 1);
        let text = c.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("cx q0, q1"));
    }

    #[test]
    fn from_instructions_validates() {
        let instrs = vec![Instruction::new(Gate::H, &[Qubit::new(4)])];
        assert!(Circuit::from_instructions(3, instrs.clone()).is_err());
        assert!(Circuit::from_instructions(5, instrs).is_ok());
    }

    #[test]
    fn structural_hash_ignores_name_but_not_structure() {
        let mut a = Circuit::with_name(3, "alpha");
        a.h(0).cx(0, 1).ccx(0, 1, 2);
        let mut b = Circuit::with_name(3, "beta");
        b.h(0).cx(0, 1).ccx(0, 1, 2);
        assert_eq!(a.structural_hash(), b.structural_hash());

        // Operand order matters.
        let mut c = Circuit::new(3);
        c.h(0).cx(1, 0).ccx(0, 1, 2);
        assert_ne!(a.structural_hash(), c.structural_hash());

        // Width matters even with identical instructions.
        let mut d = Circuit::new(4);
        d.h(0).cx(0, 1).ccx(0, 1, 2);
        assert_ne!(a.structural_hash(), d.structural_hash());
    }

    #[test]
    fn structural_hash_covers_parameter_bits() {
        let mut a = Circuit::new(1);
        a.rz(0.25, 0);
        let mut b = Circuit::new(1);
        b.rz(0.25 + f64::EPSILON, 0);
        assert_ne!(a.structural_hash(), b.structural_hash());
        // Same angle on a different rotation axis differs too.
        let mut c = Circuit::new(1);
        c.rx(0.25, 0);
        assert_ne!(a.structural_hash(), c.structural_hash());
    }

    #[test]
    fn structural_hash_distinguishes_prefixes() {
        // An empty circuit and a one-gate circuit must not collide by
        // accident of length omission.
        let empty = Circuit::new(2);
        let mut one = Circuit::new(2);
        one.h(0);
        assert_ne!(empty.structural_hash(), one.structural_hash());
        assert_eq!(empty.structural_hash(), Circuit::new(2).structural_hash());
    }

    #[test]
    fn remapped_round_trip() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let r = c.remapped(4, &[2, 0]).unwrap();
        assert_eq!(r.num_qubits(), 4);
        assert_eq!(
            r.instructions()[0].qubits(),
            &[Qubit::new(2), Qubit::new(0)]
        );
    }
}
