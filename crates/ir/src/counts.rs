//! [`GateCounts`]: summary statistics of a circuit.

use crate::Gate;
use std::fmt;

/// Gate-count summary of a circuit, the paper's primary static cost metric
/// (§2.5: "two-qubit gate count ... inversely correlated with success rate").
///
/// Produced by [`Circuit::counts`](crate::Circuit::counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Total instructions, measurements included.
    pub total: usize,
    /// Single-qubit unitary gates.
    pub one_qubit: usize,
    /// Two-qubit gates of any kind (CX, CZ, CP, SWAP, controlled roots).
    pub two_qubit: usize,
    /// Three-qubit gates (Toffolis).
    pub three_qubit: usize,
    /// Measurements.
    pub measure: usize,
    /// CX gates specifically.
    pub cx: usize,
    /// SWAP gates specifically.
    pub swap: usize,
    /// Toffoli (CCX) gates specifically.
    pub ccx: usize,
    /// Doubly-controlled-Z gates specifically.
    pub ccz: usize,
    /// Fredkin (controlled-SWAP) gates specifically.
    pub cswap: usize,
}

impl GateCounts {
    /// Folds one gate into the summary.
    pub(crate) fn record(&mut self, gate: Gate) {
        self.total += 1;
        match gate.arity() {
            1 if gate.is_measurement() => self.measure += 1,
            1 => self.one_qubit += 1,
            2 => self.two_qubit += 1,
            3 => self.three_qubit += 1,
            _ => unreachable!(),
        }
        match gate {
            Gate::Cx => self.cx += 1,
            Gate::Swap => self.swap += 1,
            Gate::Ccx => self.ccx += 1,
            Gate::Ccz => self.ccz += 1,
            Gate::Cswap => self.cswap += 1,
            _ => {}
        }
    }

    /// Two-qubit cost after full lowering: each SWAP counts as 3 CX, each
    /// Toffoli and CCZ as the canonical 6-CNOT decomposition, and each
    /// Fredkin as its 8-CNOT form (CX-conjugated Toffoli).
    ///
    /// This matches how the paper compares circuits that still contain
    /// structural gates against fully-lowered ones.
    pub fn two_qubit_equivalent(&self) -> usize {
        self.two_qubit + 2 * self.swap + 6 * (self.ccx + self.ccz) + 8 * self.cswap
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates ({} 1q, {} 2q [{} cx, {} swap], {} 3q, {} measure)",
            self.total,
            self.one_qubit,
            self.two_qubit,
            self.cx,
            self.swap,
            self.three_qubit,
            self.measure
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_gates() {
        let mut c = GateCounts::default();
        c.record(Gate::H);
        c.record(Gate::Cx);
        c.record(Gate::Swap);
        c.record(Gate::Ccx);
        c.record(Gate::Measure);
        assert_eq!(c.total, 5);
        assert_eq!(c.one_qubit, 1);
        assert_eq!(c.two_qubit, 2);
        assert_eq!(c.three_qubit, 1);
        assert_eq!(c.measure, 1);
        assert_eq!(c.cx, 1);
        assert_eq!(c.swap, 1);
        assert_eq!(c.ccx, 1);
    }

    #[test]
    fn two_qubit_equivalent_expands_structural_gates() {
        let mut c = GateCounts::default();
        c.record(Gate::Cx);
        c.record(Gate::Swap); // 3 CX
        c.record(Gate::Ccx); // 6 CX
        assert_eq!(c.two_qubit_equivalent(), 1 + 3 + 6);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!GateCounts::default().to_string().is_empty());
    }
}
