//! Error types for circuit validation.

use std::error::Error;
use std::fmt;

/// Reasons a circuit (or an edit to one) can be invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// An instruction references a qubit index at or beyond the circuit width.
    QubitOutOfRange {
        /// Index of the offending instruction.
        instruction: usize,
        /// The out-of-range qubit index.
        qubit: usize,
        /// The circuit width.
        num_qubits: usize,
    },
    /// An instruction applies a gate to the same qubit more than once.
    DuplicateOperand {
        /// Index of the offending instruction.
        instruction: usize,
    },
    /// An operand count does not match the gate arity.
    ArityMismatch {
        /// Gate mnemonic.
        gate: &'static str,
        /// Arity the gate requires.
        expected: usize,
        /// Operands supplied.
        actual: usize,
    },
    /// A unitary-only operation (e.g. [`inverse`]) met a measurement.
    ///
    /// [`inverse`]: crate::Circuit::inverse
    NotUnitary {
        /// Index of the measurement instruction.
        instruction: usize,
    },
    /// Composition of circuits with incompatible widths.
    WidthMismatch {
        /// Width expected by the receiving circuit/mapping.
        expected: usize,
        /// Width actually supplied.
        actual: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange {
                instruction,
                qubit,
                num_qubits,
            } => write!(
                f,
                "instruction {instruction} references qubit {qubit} but the circuit has {num_qubits} qubits"
            ),
            CircuitError::DuplicateOperand { instruction } => {
                write!(f, "instruction {instruction} repeats a qubit operand")
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                actual,
            } => write!(
                f,
                "gate {gate} expects {expected} operand(s) but {actual} were supplied"
            ),
            CircuitError::NotUnitary { instruction } => write!(
                f,
                "instruction {instruction} is a measurement; the operation requires a unitary circuit"
            ),
            CircuitError::WidthMismatch { expected, actual } => write!(
                f,
                "expected a circuit/mapping over {expected} qubits, got {actual}"
            ),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            instruction: 3,
            qubit: 9,
            num_qubits: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("instruction 3"));
        assert!(msg.contains("qubit 9"));
        assert!(msg.contains('5'));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(CircuitError::DuplicateOperand { instruction: 0 });
    }
}
