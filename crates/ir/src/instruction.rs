//! [`Instruction`]: a gate applied to specific qubits.

use crate::{Gate, Operands, Qubit};
use std::fmt;

/// One step of a circuit: a [`Gate`] applied to concrete [`Operands`].
///
/// # Examples
///
/// ```
/// use trios_ir::{Gate, Instruction, Qubit};
///
/// let toffoli = Instruction::new(
///     Gate::Ccx,
///     &[Qubit::new(0), Qubit::new(1), Qubit::new(2)],
/// );
/// assert_eq!(toffoli.to_string(), "ccx q0, q1, q2");
/// assert_eq!(toffoli.qubits().len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instruction {
    gate: Gate,
    operands: Operands,
}

impl Instruction {
    /// Creates an instruction applying `gate` to `qubits`.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate's arity, or if
    /// the qubits are not distinct.
    pub fn new(gate: Gate, qubits: &[Qubit]) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {} expects {} operand(s), got {}",
            gate.name(),
            gate.arity(),
            qubits.len()
        );
        let operands = Operands::from_slice(qubits);
        assert!(
            operands.are_distinct(),
            "gate {} applied to duplicate qubits {operands}",
            gate.name()
        );
        Instruction { gate, operands }
    }

    /// The gate being applied.
    pub fn gate(&self) -> Gate {
        self.gate
    }

    /// The qubits the gate acts on (controls first, target last).
    pub fn qubits(&self) -> &[Qubit] {
        self.operands.as_slice()
    }

    /// The operand list.
    pub fn operands(&self) -> &Operands {
        &self.operands
    }

    /// The `i`-th operand.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.qubits().len()`.
    pub fn qubit(&self, i: usize) -> Qubit {
        self.operands[i]
    }

    /// Returns a copy with every operand replaced by `f(qubit)`.
    ///
    /// Used by layout application and circuit composition.
    pub fn map_qubits(&self, f: impl FnMut(Qubit) -> Qubit) -> Self {
        Instruction {
            gate: self.gate,
            operands: self.operands.map(f),
        }
    }

    /// The inverse instruction, or `None` if the gate is a measurement.
    pub fn inverse(&self) -> Option<Instruction> {
        self.gate.inverse().map(|gate| Instruction {
            gate,
            operands: self.operands,
        })
    }

    /// `true` if this instruction shares at least one qubit with `other`.
    pub fn overlaps(&self, other: &Instruction) -> bool {
        self.qubits().iter().any(|q| other.operands.contains(*q))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.gate, self.operands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn new_validates_arity() {
        let instr = Instruction::new(Gate::Cx, &[q(0), q(1)]);
        assert_eq!(instr.gate(), Gate::Cx);
        assert_eq!(instr.qubits(), &[q(0), q(1)]);
    }

    #[test]
    #[should_panic(expected = "expects 2 operand(s)")]
    fn new_rejects_wrong_arity() {
        Instruction::new(Gate::Cx, &[q(0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubits")]
    fn new_rejects_duplicates() {
        Instruction::new(Gate::Cx, &[q(0), q(0)]);
    }

    #[test]
    fn map_qubits_relabels() {
        let instr = Instruction::new(Gate::Ccx, &[q(0), q(1), q(2)]);
        let moved = instr.map_qubits(|x| Qubit::new(x.index() * 2 + 1));
        assert_eq!(moved.qubits(), &[q(1), q(3), q(5)]);
        assert_eq!(moved.gate(), Gate::Ccx);
    }

    #[test]
    fn inverse_keeps_operands() {
        let instr = Instruction::new(Gate::T, &[q(3)]);
        let inv = instr.inverse().unwrap();
        assert_eq!(inv.gate(), Gate::Tdg);
        assert_eq!(inv.qubits(), &[q(3)]);
        assert!(Instruction::new(Gate::Measure, &[q(0)]).inverse().is_none());
    }

    #[test]
    fn overlap_detection() {
        let a = Instruction::new(Gate::Cx, &[q(0), q(1)]);
        let b = Instruction::new(Gate::Cx, &[q(1), q(2)]);
        let c = Instruction::new(Gate::H, &[q(3)]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn display() {
        let instr = Instruction::new(Gate::Swap, &[q(4), q(9)]);
        assert_eq!(instr.to_string(), "swap q4, q9");
    }
}
