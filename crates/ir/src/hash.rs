//! Minimal FNV-1a hashing, kept in-tree so every structural hash (and
//! therefore every compilation-cache key derived from one) is a pure,
//! platform-stable function of its input — `std`'s hashers are explicitly
//! unstable across releases and randomly seeded per process.
//!
//! State is a plain `u64` threaded through the `write_*` functions:
//!
//! ```
//! use trios_ir::hash;
//!
//! let h = hash::write_u64(hash::OFFSET, 42);
//! assert_eq!(h, hash::write_u64(hash::OFFSET, 42));
//! assert_ne!(h, hash::write_u64(hash::OFFSET, 43));
//! ```

/// The FNV-1a 64-bit offset basis: the initial hash state.
pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into hash state `h`, returning the new state.
pub fn write_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

/// Folds one little-endian `u64` into hash state `h`.
pub fn write_u64(h: u64, word: u64) -> u64 {
    write_bytes(h, &word.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Reference values for the standard 64-bit FNV-1a parameters.
        assert_eq!(write_bytes(OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(write_bytes(OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(write_bytes(OFFSET, b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn u64_matches_le_bytes() {
        let word = 0x0123_4567_89ab_cdefu64;
        assert_eq!(
            write_u64(OFFSET, word),
            write_bytes(OFFSET, &word.to_le_bytes())
        );
    }
}
