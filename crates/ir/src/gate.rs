//! The [`Gate`] enumeration: every operation the compiler understands.

use std::fmt;

/// A quantum gate (or measurement) applied by an [`Instruction`].
///
/// The set covers the IBM-style basis used throughout the paper
/// ({`u1`, `u2`, `u3`, `cx`}), the named Clifford+T gates appearing in the
/// Toffoli decompositions of Figures 3 and 4, the rotation gates used by the
/// benchmark generators (QAOA, QFT adder), and the three structural gates the
/// Trios pipeline routes as units: [`Gate::Swap`] and [`Gate::Ccx`]
/// (Toffoli). [`Gate::Measure`] marks terminal readout.
///
/// Angles are in radians.
///
/// [`Instruction`]: crate::Instruction
///
/// # Examples
///
/// ```
/// use trios_ir::Gate;
///
/// assert_eq!(Gate::Ccx.arity(), 3);
/// assert_eq!(Gate::T.inverse(), Some(Gate::Tdg));
/// assert!(Gate::Cx.is_two_qubit());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (used by optimization passes as a tombstone).
    I,
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate, `Z^(1/2)`.
    S,
    /// Inverse phase gate, `Z^(-1/2)`.
    Sdg,
    /// T gate, `Z^(1/4)`.
    T,
    /// Inverse T gate, `Z^(-1/4)`.
    Tdg,
    /// Square root of X, `X^(1/2)`.
    Sx,
    /// Inverse square root of X, `X^(-1/2)`.
    Sxdg,
    /// Rotation about the X axis by the given angle.
    Rx(f64),
    /// Rotation about the Y axis by the given angle.
    Ry(f64),
    /// Rotation about the Z axis by the given angle.
    Rz(f64),
    /// IBM `u1(λ)`: a phase gate `diag(1, e^{iλ})`.
    U1(f64),
    /// IBM `u2(φ, λ)`: equivalent to `u3(π/2, φ, λ)`.
    U2(f64, f64),
    /// IBM `u3(θ, φ, λ)`: the generic single-qubit gate.
    U3(f64, f64, f64),
    /// Fractional X gate `X^t` (used by the Barenco controlled-root ladder).
    Xpow(f64),
    /// Controlled-`X^t` (lowered to CX + 1q gates by the basis pass).
    Cxpow(f64),
    /// Controlled NOT.
    Cx,
    /// Controlled Z.
    Cz,
    /// Controlled phase, `diag(1, 1, 1, e^{iλ})`.
    Cp(f64),
    /// SWAP of two qubits (lowered to 3 CNOTs for hardware).
    Swap,
    /// Toffoli (CCX): the 3-qubit gate the Trios router handles natively.
    Ccx,
    /// Doubly-controlled Z. Fully symmetric (diagonal), so the router may
    /// treat any operand as the decomposition target (paper §4's "move the
    /// two H gates" freedom, taken to its natural limit).
    Ccz,
    /// Controlled SWAP (Fredkin): control first, then the swapped pair.
    /// Routed as a trio like the Toffoli (the paper's §4 extension to
    /// "any multi-qubit operation of three ... qubits").
    Cswap,
    /// Terminal computational-basis measurement of one qubit.
    Measure,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::U1(_)
            | Gate::U2(..)
            | Gate::U3(..)
            | Gate::Xpow(_)
            | Gate::Measure => 1,
            Gate::Cx | Gate::Cz | Gate::Cp(_) | Gate::Swap | Gate::Cxpow(_) => 2,
            Gate::Ccx | Gate::Ccz | Gate::Cswap => 3,
        }
    }

    /// Lowercase OpenQASM-style mnemonic (without parameters).
    pub fn name(self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::U1(_) => "u1",
            Gate::U2(..) => "u2",
            Gate::U3(..) => "u3",
            Gate::Xpow(_) => "xpow",
            Gate::Cxpow(_) => "cxpow",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Cp(_) => "cp",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
            Gate::Ccz => "ccz",
            Gate::Cswap => "cswap",
            Gate::Measure => "measure",
        }
    }

    /// Continuous parameters of the gate, in declaration order.
    pub fn params(self) -> Vec<f64> {
        match self {
            Gate::Rx(a)
            | Gate::Ry(a)
            | Gate::Rz(a)
            | Gate::U1(a)
            | Gate::Cp(a)
            | Gate::Xpow(a)
            | Gate::Cxpow(a) => vec![a],
            Gate::U2(a, b) => vec![a, b],
            Gate::U3(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }

    /// `true` if the gate acts on exactly one qubit (measurement included).
    pub fn is_single_qubit(self) -> bool {
        self.arity() == 1
    }

    /// `true` if the gate acts on exactly two qubits.
    pub fn is_two_qubit(self) -> bool {
        self.arity() == 2
    }

    /// `true` if the gate acts on three qubits (i.e. is a Toffoli).
    pub fn is_three_qubit(self) -> bool {
        self.arity() == 3
    }

    /// `true` for [`Gate::Measure`].
    pub fn is_measurement(self) -> bool {
        matches!(self, Gate::Measure)
    }

    /// `true` if the gate is unitary (everything except measurement).
    pub fn is_unitary(self) -> bool {
        !self.is_measurement()
    }

    /// `true` if the gate is diagonal in the computational basis.
    ///
    /// Diagonal gates commute with one another and with the control side of
    /// controlled gates; the optimizer uses this for gate cancellation.
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::U1(_)
                | Gate::Cz
                | Gate::Cp(_)
                | Gate::Ccz
        )
    }

    /// `true` if the gate is in the hardware-supported set of the paper's
    /// target devices: arbitrary single-qubit gates plus CX (and measurement).
    pub fn is_hardware_supported(self) -> bool {
        match self {
            Gate::Cx => true,
            Gate::Cz
            | Gate::Cp(_)
            | Gate::Swap
            | Gate::Ccx
            | Gate::Ccz
            | Gate::Cswap
            | Gate::Cxpow(_) => false,
            g => g.arity() == 1,
        }
    }

    /// The inverse gate, or `None` for measurement.
    pub fn inverse(self) -> Option<Gate> {
        Some(match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(a) => Gate::Rx(-a),
            Gate::Ry(a) => Gate::Ry(-a),
            Gate::Rz(a) => Gate::Rz(-a),
            Gate::U1(a) => Gate::U1(-a),
            Gate::U2(phi, lam) => Gate::U3(-std::f64::consts::FRAC_PI_2, -lam, -phi),
            Gate::U3(theta, phi, lam) => Gate::U3(-theta, -lam, -phi),
            Gate::Cp(a) => Gate::Cp(-a),
            Gate::Xpow(t) => Gate::Xpow(-t),
            Gate::Cxpow(t) => Gate::Cxpow(-t),
            Gate::Measure => return None,
            // Self-inverse gates.
            g @ (Gate::I
            | Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::Cx
            | Gate::Cz
            | Gate::Swap
            | Gate::Ccx
            | Gate::Ccz
            | Gate::Cswap) => g,
        })
    }

    /// `true` if `self` and `other` cancel to the identity when applied in
    /// sequence to the same operands.
    pub fn cancels_with(self, other: Gate) -> bool {
        match self.inverse() {
            Some(inv) => inv == other,
            None => false,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            write!(f, "{}(", self.name())?;
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p:.6}")?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arity_is_consistent_with_category_predicates() {
        let gates = [
            Gate::I,
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(0.1),
            Gate::Ry(0.2),
            Gate::Rz(0.3),
            Gate::U1(0.4),
            Gate::U2(0.5, 0.6),
            Gate::U3(0.7, 0.8, 0.9),
            Gate::Xpow(0.5),
            Gate::Cxpow(0.5),
            Gate::Cx,
            Gate::Cz,
            Gate::Cp(1.0),
            Gate::Swap,
            Gate::Ccx,
            Gate::Ccz,
            Gate::Cswap,
            Gate::Measure,
        ];
        for g in gates {
            let by_arity = match g.arity() {
                1 => (true, false, false),
                2 => (false, true, false),
                3 => (false, false, true),
                other => panic!("unexpected arity {other}"),
            };
            assert_eq!(
                (g.is_single_qubit(), g.is_two_qubit(), g.is_three_qubit()),
                by_arity,
                "gate {g:?}"
            );
        }
    }

    #[test]
    fn inverse_pairs_cancel() {
        let pairs = [
            (Gate::S, Gate::Sdg),
            (Gate::T, Gate::Tdg),
            (Gate::Sx, Gate::Sxdg),
            (Gate::Rz(0.25), Gate::Rz(-0.25)),
            (Gate::Cp(PI / 8.0), Gate::Cp(-PI / 8.0)),
        ];
        for (a, b) in pairs {
            assert!(a.cancels_with(b), "{a:?} should cancel {b:?}");
            assert!(b.cancels_with(a), "{b:?} should cancel {a:?}");
        }
    }

    #[test]
    fn self_inverse_gates() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Ccx,
            Gate::Ccz,
            Gate::Cswap,
        ] {
            assert_eq!(g.inverse(), Some(g));
            assert!(g.cancels_with(g));
        }
    }

    #[test]
    fn measure_has_no_inverse() {
        assert_eq!(Gate::Measure.inverse(), None);
        assert!(!Gate::Measure.cancels_with(Gate::Measure));
    }

    #[test]
    fn hardware_supported_set() {
        assert!(Gate::Cx.is_hardware_supported());
        assert!(Gate::U3(1.0, 2.0, 3.0).is_hardware_supported());
        assert!(Gate::H.is_hardware_supported());
        assert!(!Gate::Swap.is_hardware_supported());
        assert!(!Gate::Ccx.is_hardware_supported());
        assert!(!Gate::Ccz.is_hardware_supported());
        assert!(!Gate::Cswap.is_hardware_supported());
        assert!(!Gate::Cz.is_hardware_supported());
        assert!(!Gate::Cxpow(0.5).is_hardware_supported());
    }

    #[test]
    fn display_formats_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert_eq!(Gate::Rz(0.5).to_string(), "rz(0.500000)");
        assert_eq!(Gate::U2(0.1, 0.2).to_string(), "u2(0.100000, 0.200000)");
    }

    #[test]
    fn diagonal_gates() {
        assert!(Gate::Rz(1.0).is_diagonal());
        assert!(Gate::Cz.is_diagonal());
        assert!(Gate::T.is_diagonal());
        assert!(Gate::Ccz.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(!Gate::Cx.is_diagonal());
        assert!(!Gate::Ccx.is_diagonal());
        assert!(!Gate::Cswap.is_diagonal());
    }
}
