//! ASCII wire diagrams of circuits, in the style of the paper's circuit
//! figures (and every quantum-computing textbook).
//!
//! The renderer lays instructions into time columns with the same greedy
//! rule the depth metric uses (a gate starts in the earliest column where
//! all its qubits — and every wire between them — are free), then draws
//! one text row per qubit wire:
//!
//! ```text
//! q0: ---*-------
//!        |
//! q1: ---*---T---
//!        |
//! q2: ---X-------
//! ```
//!
//! Plain ASCII throughout: `*` marks controls (and both CZ operands), `X`
//! a NOT target, `x` SWAP endpoints, `M` measurement, `|` the vertical
//! connector of a multi-qubit gate.

use crate::{Circuit, Gate};

/// Renders `circuit` as an ASCII wire diagram.
///
/// Intended for small circuits (examples, tests, bug reports); wide
/// circuits produce long lines rather than wrapping.
///
/// # Examples
///
/// ```
/// use trios_ir::{diagram, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = diagram(&c);
/// assert!(text.contains("q0: ---H---*---"));
/// assert!(text.contains("q1: -------X---"));
/// ```
pub fn diagram(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }

    // Column assignment: greedy ASAP layering over *wire spans* so the
    // vertical connector of a multi-qubit gate never crosses a busy wire.
    let mut wire_free = vec![0usize; n];
    let mut columns: Vec<Vec<usize>> = Vec::new(); // column -> instruction indices
    for (idx, instr) in circuit.iter().enumerate() {
        let qubits: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
        let lo = *qubits.iter().min().expect("gates have operands");
        let hi = *qubits.iter().max().expect("gates have operands");
        let column = (lo..=hi).map(|q| wire_free[q]).max().unwrap_or(0);
        for slot in &mut wire_free[lo..=hi] {
            *slot = column + 1;
        }
        if columns.len() <= column {
            columns.resize_with(column + 1, Vec::new);
        }
        columns[column].push(idx);
    }

    // Render column by column into per-row strings (wire rows interleaved
    // with connector rows).
    let prefix_width = format!("q{}", n - 1).len();
    let mut wires: Vec<String> = (0..n)
        .map(|q| format!("{:<width$}: ", format!("q{q}"), width = prefix_width))
        .collect();
    let mut gaps: Vec<String> = vec![" ".repeat(prefix_width + 2); n.saturating_sub(1)];

    for column in &columns {
        let labels: Vec<ColumnEntry> = column
            .iter()
            .map(|&idx| {
                let instr = &circuit.instructions()[idx];
                let qubits: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
                let lo = *qubits.iter().min().expect("operands");
                let hi = *qubits.iter().max().expect("operands");
                (idx, symbol_set(instr.gate(), &qubits), (lo, hi))
            })
            .collect();
        let cell = labels
            .iter()
            .flat_map(|(_, symbols, _)| symbols.iter().map(|(_, s)| s.len()))
            .max()
            .unwrap_or(1)
            .max(1);

        // Wire rows: symbol or filler dashes.
        let mut row_symbol: Vec<Option<String>> = vec![None; n];
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (_, symbols, span) in &labels {
            for (q, s) in symbols {
                row_symbol[*q] = Some(s.clone());
            }
            spans.push(*span);
        }
        for (q, wire) in wires.iter_mut().enumerate() {
            let body = match &row_symbol[q] {
                Some(s) => format!("{s:-<cell$}"),
                None => {
                    // A wire strictly inside a gate span carries the
                    // connector through its dashes.
                    "-".repeat(cell)
                }
            };
            wire.push_str("---");
            wire.push_str(&body);
        }
        // Connector rows between wires.
        for (g, gap) in gaps.iter_mut().enumerate() {
            // Gap g sits between wires g and g+1: draw `|` if any gate in
            // this column spans across it.
            let crossed = spans.iter().any(|&(lo, hi)| lo <= g && g < hi);
            gap.push_str("   ");
            if crossed {
                gap.push('|');
                gap.push_str(&" ".repeat(cell - 1));
            } else {
                gap.push_str(&" ".repeat(cell));
            }
        }
    }

    let mut out = String::new();
    for q in 0..n {
        let line = format!("{}---", wires[q]);
        out.push_str(line.trim_end());
        out.push('\n');
        if q + 1 < n {
            let gap = gaps[q].trim_end();
            if !gap.is_empty() {
                out.push_str(gap);
            }
            out.push('\n');
        }
    }
    out
}

/// One rendered gate: `(instruction index, per-qubit symbols, wire span)`.
type ColumnEntry = (usize, Vec<(usize, String)>, (usize, usize));

/// The per-qubit symbols of one instruction: `(qubit, symbol)`.
fn symbol_set(gate: Gate, qubits: &[usize]) -> Vec<(usize, String)> {
    match gate {
        Gate::Cx => vec![(qubits[0], "*".into()), (qubits[1], "X".into())],
        Gate::Cz => vec![(qubits[0], "*".into()), (qubits[1], "*".into())],
        Gate::Cp(l) => vec![(qubits[0], "*".into()), (qubits[1], format!("P({l:.2})"))],
        Gate::Cxpow(t) => vec![(qubits[0], "*".into()), (qubits[1], format!("X^{t:.2}"))],
        Gate::Swap => vec![(qubits[0], "x".into()), (qubits[1], "x".into())],
        Gate::Ccx => vec![
            (qubits[0], "*".into()),
            (qubits[1], "*".into()),
            (qubits[2], "X".into()),
        ],
        Gate::Ccz => vec![
            (qubits[0], "*".into()),
            (qubits[1], "*".into()),
            (qubits[2], "*".into()),
        ],
        Gate::Cswap => vec![
            (qubits[0], "*".into()),
            (qubits[1], "x".into()),
            (qubits[2], "x".into()),
        ],
        Gate::Measure => vec![(qubits[0], "M".into())],
        g if g.arity() == 1 => {
            let params = g.params();
            let label = if params.is_empty() {
                g.name().to_uppercase()
            } else {
                format!(
                    "{}({})",
                    g.name().to_uppercase(),
                    params
                        .iter()
                        .map(|p| format!("{p:.2}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            vec![(qubits[0], label)]
        }
        g => unreachable!("no symbol mapping for {g:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bell_pair() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let text = diagram(&c);
        assert_eq!(text, "q0: ---H---*---\n           |\nq1: -------X---\n");
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let text = diagram(&c);
        // Both CXs in the first column: all four wires have symbols at the
        // same offset.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "q0: ---*---");
        assert_eq!(lines[2], "q1: ---X---");
        assert_eq!(lines[4], "q2: ---*---");
        assert_eq!(lines[6], "q3: ---X---");
    }

    #[test]
    fn connector_blocks_inner_wires() {
        // CX(0,2) spans wire 1, so a later H(1) needs its own column.
        let mut c = Circuit::new(3);
        c.cx(0, 2).h(1);
        let text = diagram(&c);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "q0: ---*-------");
        assert_eq!(lines[2], "q1: -------H---");
        assert_eq!(lines[4], "q2: ---X-------");
        // The connector passes through the q0/q1 and q1/q2 gaps.
        assert!(lines[1].contains('|'));
        assert!(lines[3].contains('|'));
    }

    #[test]
    fn toffoli_and_friends_have_distinct_symbols() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).ccz(0, 1, 2).cswap(0, 1, 2);
        let text = diagram(&c);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "q0: ---*---*---*---");
        assert_eq!(lines[2], "q1: ---*---*---x---");
        assert_eq!(lines[4], "q2: ---X---*---x---");
    }

    #[test]
    fn parameterized_gates_show_values() {
        let mut c = Circuit::new(1);
        c.rz(0.5, 0);
        assert!(diagram(&c).contains("RZ(0.50)"));
    }

    #[test]
    fn measurement_is_marked() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        assert!(diagram(&c).contains("M"));
    }

    #[test]
    fn empty_circuit_renders_bare_wires() {
        let c = Circuit::new(2);
        let text = diagram(&c);
        assert_eq!(text, "q0: ---\n\nq1: ---\n");
    }

    #[test]
    fn ten_plus_qubits_align_prefixes() {
        let mut c = Circuit::new(11);
        c.h(0).h(10);
        let text = diagram(&c);
        assert!(text.contains("q0 : ---H"));
        assert!(text.contains("q10: ---"));
    }
}
