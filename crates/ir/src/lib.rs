//! # trios-ir — quantum circuit IR for the Orchestrated Trios compiler
//!
//! This crate defines the circuit intermediate representation shared by every
//! pass of the [Orchestrated Trios (ASPLOS 2021)](https://doi.org/10.1145/3445814.3446718)
//! reproduction: a [`Circuit`] is an ordered list of [`Instruction`]s (a
//! [`Gate`] applied to [`Operands`] of [`Qubit`]s).
//!
//! Two design points matter for the Trios compiler specifically:
//!
//! * **Toffoli is first-class.** [`Gate::Ccx`] is an ordinary gate, so the
//!   first decomposition pass can stop at the Toffoli level and the router
//!   can treat a trio of qubits as one schedulable unit — the core idea of
//!   the paper.
//! * **Structural gates survive until lowering.** [`Gate::Swap`] stays a
//!   single instruction until the final SWAP→3·CX lowering, which keeps
//!   routing output readable and lets the cost model count communication
//!   separately from computation.
//!
//! # Examples
//!
//! ```
//! use trios_ir::{Circuit, Gate};
//!
//! // The paper's running example: one Toffoli between three qubits.
//! let mut c = Circuit::with_name(3, "single-toffoli");
//! c.ccx(0, 1, 2).measure_all();
//!
//! assert_eq!(c.counts().ccx, 1);
//! assert!(!c.is_hardware_lowered()); // still needs decomposition
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod counts;
mod diagram;
mod error;
mod gate;
pub mod hash;
mod instruction;
mod operands;
mod qubit;

pub use circuit::Circuit;
pub use counts::GateCounts;
pub use diagram::diagram;
pub use error::CircuitError;
pub use gate::Gate;
pub use instruction::Instruction;
pub use operands::Operands;
pub use qubit::Qubit;
