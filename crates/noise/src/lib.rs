//! # trios-noise — calibration data and the paper's success model
//!
//! Implements §2.6 of the paper: success probability as the product of
//! per-gate no-error probabilities and a whole-program decoherence factor
//! `exp(−Δ/T1 − Δ/T2)`. The calibration constants are the paper's published
//! IBM Johannesburg snapshot (2020-08-19), and [`Calibration::improved`]
//! provides the "20× better" near-future device of the benchmark
//! simulations and the Figure 12 sensitivity sweep.
//!
//! # Examples
//!
//! ```
//! use trios_ir::Circuit;
//! use trios_noise::{estimate_success, Calibration};
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1).measure_all();
//!
//! let today = estimate_success(&c, &Calibration::johannesburg_2020_08_19());
//! let future = estimate_success(&c, &Calibration::near_future());
//! assert!(future.probability() > today.probability());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calibration;
mod estimate;
mod montecarlo;

pub use calibration::Calibration;
pub use estimate::{
    estimate_success, estimate_success_with_crosstalk, estimate_success_with_edge_errors,
    CrosstalkPolicy, SuccessEstimate,
};
pub use montecarlo::{
    analytic_error_free_probability, monte_carlo_fidelity, MonteCarloError, MonteCarloOptions,
    MonteCarloResult,
};
