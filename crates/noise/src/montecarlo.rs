//! Monte Carlo (quantum-trajectory) noise simulation, cross-validating the
//! paper's analytic success model (§2.6).
//!
//! The analytic model multiplies "no gate error" probabilities with a
//! whole-program decoherence factor. This module checks that model
//! empirically: it samples noisy executions of the actual circuit on the
//! statevector simulator, injecting
//!
//! * **gate errors** — after each gate, with the calibrated probability, a
//!   uniformly random non-identity Pauli on the gate's operands;
//! * **decoherence** — per qubit and per scheduled time interval (busy and
//!   idle alike, from the ASAP schedule), a Pauli-twirled
//!   relaxation/dephasing channel: `X` with probability
//!   `(1 − e^{−dt/T1})/2` and `Z` with `(1 − e^{−dt/T2})/2`;
//!
//! and reports the mean fidelity with the ideal output. Two analytic
//! quantities are directly validated:
//!
//! * the fraction of completely error-free trajectories is an unbiased
//!   estimator of the model's `p_gates · p_coherence`-style product, and
//! * mean fidelity ≥ that product — erred trajectories retain some
//!   overlap — with the *gap* measuring how pessimistic the paper's
//!   "success = nothing went wrong" approximation is.

use crate::Calibration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use trios_ir::{Circuit, Gate, Instruction, Qubit};
use trios_schedule::schedule_asap;
use trios_sim::{SimError, State};

/// Why a Monte Carlo run could not be performed.
#[derive(Debug, Clone, PartialEq)]
pub enum MonteCarloError {
    /// `shots == 0` was requested: the estimator would be a 0/0 and every
    /// statistic NaN, so the configuration is rejected up front.
    ZeroShots,
    /// The statevector simulator refused the circuit.
    Sim(SimError),
}

impl fmt::Display for MonteCarloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonteCarloError::ZeroShots => {
                write!(f, "monte carlo needs at least one shot (got 0)")
            }
            MonteCarloError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for MonteCarloError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MonteCarloError::ZeroShots => None,
            MonteCarloError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for MonteCarloError {
    fn from(e: SimError) -> Self {
        MonteCarloError::Sim(e)
    }
}

/// Configuration of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOptions {
    /// Number of sampled trajectories.
    pub shots: usize,
    /// RNG seed (trajectories are reproducible per seed).
    pub seed: u64,
    /// Inject per-gate Pauli errors at the calibrated rates.
    pub gate_errors: bool,
    /// Inject time-resolved relaxation/dephasing from the ASAP schedule.
    pub decoherence: bool,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            shots: 200,
            seed: 0,
            gate_errors: true,
            decoherence: true,
        }
    }
}

/// Aggregate result of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Mean fidelity `|⟨ψ_ideal|ψ_shot⟩|²` over trajectories.
    pub mean_fidelity: f64,
    /// Standard error of the mean fidelity.
    pub std_error: f64,
    /// Trajectories in which no error of any kind was injected.
    pub error_free_shots: usize,
    /// Total trajectories sampled.
    pub shots: usize,
}

impl MonteCarloResult {
    /// Fraction of trajectories with no injected error — the Monte Carlo
    /// estimate of the analytic model's "nothing went wrong" probability.
    ///
    /// Returns `0.0` (never NaN) for a hand-built result with
    /// `shots == 0`; [`monte_carlo_fidelity`] itself rejects that
    /// configuration with [`MonteCarloError::ZeroShots`].
    pub fn error_free_fraction(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.error_free_shots as f64 / self.shots as f64
    }
}

/// Runs `options.shots` noisy trajectories of `circuit` under
/// `calibration` and reports fidelity statistics against the noiseless
/// output.
///
/// Measurements are skipped (fidelity is computed on the pre-measurement
/// state); readout error is a classical per-bit flip best handled
/// analytically, as [`estimate_success`](crate::estimate_success) does.
///
/// # Errors
///
/// Returns [`MonteCarloError::ZeroShots`] when `options.shots == 0` (the
/// statistics would all be NaN), or [`MonteCarloError::Sim`] wrapping
/// [`SimError::TooManyQubits`] if the circuit is too wide to simulate
/// densely.
pub fn monte_carlo_fidelity(
    circuit: &Circuit,
    calibration: &Calibration,
    options: MonteCarloOptions,
) -> Result<MonteCarloResult, MonteCarloError> {
    if options.shots == 0 {
        return Err(MonteCarloError::ZeroShots);
    }
    let ideal = State::run(circuit)?;
    let schedule = schedule_asap(circuit, &calibration.durations);
    let n = circuit.num_qubits();
    let mut rng = StdRng::seed_from_u64(options.seed);

    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut error_free = 0usize;
    for shot in 0..options.shots {
        let mut state = State::zero(n)?;
        let mut erred = false;
        // Per-qubit time already accounted for by decoherence injection.
        let mut qubit_clock = vec![0.0f64; n];
        for op in schedule.ops() {
            let instr = &op.instruction;
            if instr.gate().is_measurement() {
                continue;
            }
            if options.decoherence {
                // Idle + gate time since this qubit's last update.
                for q in instr.qubits() {
                    let dt = op.end_us() - qubit_clock[q.index()];
                    qubit_clock[q.index()] = op.end_us();
                    erred |= inject_decoherence(&mut state, &mut rng, q.index(), dt, calibration);
                }
            }
            state.apply(instr);
            if options.gate_errors {
                let rate = match instr.gate().arity() {
                    1 => calibration.one_qubit_error,
                    _ => calibration.two_qubit_error,
                };
                if rng.gen_bool(rate) {
                    inject_random_pauli(&mut state, &mut rng, instr.qubits());
                    erred = true;
                }
            }
        }
        if options.decoherence {
            // Trailing idle up to circuit end.
            let total = schedule.total_duration_us();
            for (q, clock) in qubit_clock.iter().enumerate() {
                let dt = total - clock;
                erred |= inject_decoherence(&mut state, &mut rng, q, dt, calibration);
            }
        }
        if !erred {
            error_free += 1;
        }
        let fidelity = ideal.fidelity(&state);
        // Welford's online mean/variance.
        let delta = fidelity - mean;
        mean += delta / (shot + 1) as f64;
        m2 += delta * (fidelity - mean);
    }
    let variance = if options.shots > 1 {
        m2 / (options.shots - 1) as f64
    } else {
        0.0
    };
    Ok(MonteCarloResult {
        mean_fidelity: mean,
        std_error: (variance / options.shots as f64).sqrt(),
        error_free_shots: error_free,
        shots: options.shots,
    })
}

/// The exact probability that a [`monte_carlo_fidelity`] trajectory under
/// `options` injects **no error at all** — the analytic product the
/// sampler's [`MonteCarloResult::error_free_fraction`] estimates without
/// bias, and therefore a guaranteed (within binomial sampling error)
/// lower bound on its mean fidelity: error-free trajectories replay the
/// ideal circuit, so each contributes fidelity exactly 1.
///
/// The computation walks the same ASAP schedule as the sampler and
/// multiplies, per the enabled channels,
///
/// * `1 − e_gate` per non-measurement gate, and
/// * `(1 − p_relax(dt)) · (1 − p_dephase(dt))` per qubit and scheduled
///   interval (busy and idle alike, including the trailing idle to
///   circuit end), with the Pauli-twirled rates
///   `p = (1 − e^{−dt/T})/2`.
///
/// Note the decoherence factor is **per qubit**, which on wide or
/// idle-heavy circuits is strictly more pessimistic than the paper's
/// whole-program `exp(−Δ/T1 − Δ/T2)` term
/// ([`estimate_success`](crate::estimate_success)); the gap between the
/// two is exactly what the Monte Carlo cross-check measures.
pub fn analytic_error_free_probability(
    circuit: &Circuit,
    calibration: &Calibration,
    options: MonteCarloOptions,
) -> f64 {
    let schedule = schedule_asap(circuit, &calibration.durations);
    let n = circuit.num_qubits();
    let mut p = 1.0f64;
    let mut qubit_clock = vec![0.0f64; n];
    let no_decoherence = |qubit_clock: &mut [f64], q: usize, until: f64| {
        let dt = until - qubit_clock[q];
        qubit_clock[q] = until;
        if dt <= 0.0 {
            return 1.0;
        }
        let p_relax = 0.5 * (1.0 - (-dt / calibration.t1_us).exp());
        let p_dephase = 0.5 * (1.0 - (-dt / calibration.t2_us).exp());
        (1.0 - p_relax.clamp(0.0, 1.0)) * (1.0 - p_dephase.clamp(0.0, 1.0))
    };
    for op in schedule.ops() {
        let instr = &op.instruction;
        if instr.gate().is_measurement() {
            continue;
        }
        if options.decoherence {
            for q in instr.qubits() {
                p *= no_decoherence(&mut qubit_clock, q.index(), op.end_us());
            }
        }
        if options.gate_errors {
            let rate = match instr.gate().arity() {
                1 => calibration.one_qubit_error,
                _ => calibration.two_qubit_error,
            };
            p *= 1.0 - rate;
        }
    }
    if options.decoherence {
        let total = schedule.total_duration_us();
        for q in 0..n {
            p *= no_decoherence(&mut qubit_clock, q, total);
        }
    }
    p
}

/// Applies a uniformly random non-identity Pauli over `qubits`.
fn inject_random_pauli(state: &mut State, rng: &mut StdRng, qubits: &[Qubit]) {
    let options = 4usize.pow(qubits.len() as u32);
    let pick = rng.gen_range(1..options); // 0 = identity, excluded
    for (i, q) in qubits.iter().enumerate() {
        let pauli = (pick >> (2 * i)) & 0b11;
        let gate = match pauli {
            0 => continue,
            1 => Gate::X,
            2 => Gate::Y,
            _ => Gate::Z,
        };
        state.apply(&Instruction::new(gate, &[*q]));
    }
}

/// Pauli-twirled relaxation/dephasing on one qubit over `dt` µs. Returns
/// `true` if an error was injected.
fn inject_decoherence(
    state: &mut State,
    rng: &mut StdRng,
    qubit: usize,
    dt: f64,
    calibration: &Calibration,
) -> bool {
    if dt <= 0.0 {
        return false;
    }
    let q = Qubit::new(qubit);
    let mut erred = false;
    let p_relax = 0.5 * (1.0 - (-dt / calibration.t1_us).exp());
    if rng.gen_bool(p_relax.clamp(0.0, 1.0)) {
        state.apply(&Instruction::new(Gate::X, &[q]));
        erred = true;
    }
    let p_dephase = 0.5 * (1.0 - (-dt / calibration.t2_us).exp());
    if rng.gen_bool(p_dephase.clamp(0.0, 1.0)) {
        state.apply(&Instruction::new(Gate::Z, &[q]));
        erred = true;
    }
    erred
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_success;

    fn toffoli_program() -> Circuit {
        let mut c = Circuit::new(3);
        c.x(0).x(1).ccx(0, 1, 2);
        c
    }

    fn gate_errors_only(shots: usize, seed: u64) -> MonteCarloOptions {
        MonteCarloOptions {
            shots,
            seed,
            gate_errors: true,
            decoherence: false,
        }
    }

    #[test]
    fn noiseless_run_has_unit_fidelity() {
        let opts = MonteCarloOptions {
            shots: 10,
            seed: 1,
            gate_errors: false,
            decoherence: false,
        };
        let r = monte_carlo_fidelity(&toffoli_program(), &Calibration::default(), opts).unwrap();
        assert!((r.mean_fidelity - 1.0).abs() < 1e-12);
        assert_eq!(r.error_free_shots, 10);
        assert_eq!(r.std_error, 0.0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let cal = Calibration::default();
        let a = monte_carlo_fidelity(&toffoli_program(), &cal, gate_errors_only(50, 9)).unwrap();
        let b = monte_carlo_fidelity(&toffoli_program(), &cal, gate_errors_only(50, 9)).unwrap();
        let c = monte_carlo_fidelity(&toffoli_program(), &cal, gate_errors_only(50, 10)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn error_free_fraction_matches_analytic_gate_model() {
        // A circuit long enough that p_gates is meaningfully below 1.
        let mut c = Circuit::new(3);
        for _ in 0..10 {
            c.cx(0, 1).cx(1, 2).h(0);
        }
        let cal = Calibration::default(); // e2q = 0.0147
        let analytic = estimate_success(&c, &cal);
        let mc = monte_carlo_fidelity(&c, &cal, gate_errors_only(4000, 3)).unwrap();
        // Binomial check: error-free fraction estimates p_gates.
        let p = analytic.p_gates;
        let sigma = (p * (1.0 - p) / 4000.0).sqrt();
        assert!(
            (mc.error_free_fraction() - p).abs() < 4.0 * sigma,
            "mc {} vs analytic {} (4σ = {})",
            mc.error_free_fraction(),
            p,
            4.0 * sigma
        );
        // Fidelity can only exceed the "nothing went wrong" bound.
        assert!(mc.mean_fidelity >= p - 4.0 * sigma);
    }

    #[test]
    fn analytic_model_lower_bounds_fidelity() {
        // Versus pure unitary-noise fidelity, the paper's "success = no
        // error happened" product is a *lower* bound: erred trajectories
        // keep some overlap. The gap is real and circuit-dependent — a
        // Pauli landing on a wire that is in a computational basis state
        // (Z) or a |±⟩ state (X) does no damage at all — so we assert the
        // bound plus a generous cap, and assert tightness separately for
        // phase-sensitive circuits below.
        let mut c = Circuit::new(4);
        for _ in 0..6 {
            c.cx(0, 1).cx(2, 3).cx(0, 2).cx(2, 3).h(1).t(0);
        }
        let cal = Calibration::default();
        let analytic = estimate_success(&c, &cal).p_gates;
        let mc = monte_carlo_fidelity(&c, &cal, gate_errors_only(3000, 5)).unwrap();
        assert!(mc.mean_fidelity >= analytic - 0.03);
        assert!(mc.mean_fidelity <= 1.0 + 1e-12);
    }

    #[test]
    fn model_is_tight_for_phase_sensitive_circuits() {
        // All qubits in superposition with irrational phases: nearly every
        // injected Pauli destroys the overlap, so mean fidelity hugs the
        // error-free fraction.
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        for _ in 0..8 {
            c.t(0).cx(0, 1).rz(0.7, 1).cx(1, 2).t(2).cx(0, 2);
        }
        let cal = Calibration::default();
        let mc = monte_carlo_fidelity(&c, &cal, gate_errors_only(3000, 5)).unwrap();
        let gap = mc.mean_fidelity - mc.error_free_fraction();
        assert!(
            gap.abs() < 0.06,
            "gap {gap} too large: error-free {} vs fidelity {}",
            mc.error_free_fraction(),
            mc.mean_fidelity
        );
    }

    #[test]
    fn decoherence_lowers_fidelity_of_idle_heavy_circuits() {
        // Long idle stretch on a spectator qubit in superposition.
        let mut c = Circuit::new(2);
        c.h(1);
        for _ in 0..60 {
            c.x(0).x(0);
        }
        c.h(1);
        let cal = Calibration::default();
        let without = MonteCarloOptions {
            shots: 300,
            seed: 2,
            gate_errors: false,
            decoherence: false,
        };
        let with = MonteCarloOptions {
            decoherence: true,
            ..without
        };
        let clean = monte_carlo_fidelity(&c, &cal, without).unwrap();
        let noisy = monte_carlo_fidelity(&c, &cal, with).unwrap();
        assert!((clean.mean_fidelity - 1.0).abs() < 1e-12);
        assert!(noisy.mean_fidelity < 0.95);
    }

    #[test]
    fn analytic_error_free_matches_gate_model_without_decoherence() {
        // With decoherence off the product is exactly the per-gate term of
        // the §2.6 model on a lowered circuit.
        let mut c = Circuit::new(3);
        for _ in 0..7 {
            c.cx(0, 1).h(2).cx(1, 2);
        }
        let cal = Calibration::default();
        let p = analytic_error_free_probability(&c, &cal, gate_errors_only(1, 0));
        assert!((p - estimate_success(&c, &cal).p_gates).abs() < 1e-12);
    }

    #[test]
    fn error_free_fraction_is_an_unbiased_estimator_of_the_analytic_product() {
        // The full-channel validation: gate errors AND per-qubit
        // decoherence, fraction within 4σ binomial of the exact product,
        // and mean fidelity above it (error-free shots have fidelity 1).
        let mut c = Circuit::new(3);
        for _ in 0..6 {
            c.cx(0, 1).cx(1, 2).h(0).t(2);
        }
        let cal = Calibration::default();
        let options = MonteCarloOptions {
            shots: 4000,
            seed: 11,
            gate_errors: true,
            decoherence: true,
        };
        let p = analytic_error_free_probability(&c, &cal, options);
        assert!(p > 0.0 && p < 1.0);
        let mc = monte_carlo_fidelity(&c, &cal, options).unwrap();
        let sigma = (p * (1.0 - p) / options.shots as f64).sqrt();
        assert!(
            (mc.error_free_fraction() - p).abs() < 4.0 * sigma,
            "fraction {} vs analytic {} (4σ = {})",
            mc.error_free_fraction(),
            p,
            4.0 * sigma
        );
        assert!(mc.mean_fidelity >= mc.error_free_fraction());
        assert!(mc.mean_fidelity + 4.0 * sigma >= p);
    }

    #[test]
    fn rejects_oversized_circuits() {
        let c = Circuit::new(30);
        let err = monte_carlo_fidelity(&c, &Calibration::default(), MonteCarloOptions::default())
            .unwrap_err();
        assert!(matches!(err, MonteCarloError::Sim(_)), "{err}");
    }

    #[test]
    fn rejects_zero_shots_with_an_error_not_nan() {
        // Regression: shots == 0 used to panic (and a hand-built result
        // divided 0/0 into NaN); it is now a proper, matchable error.
        let opts = MonteCarloOptions {
            shots: 0,
            ..MonteCarloOptions::default()
        };
        let err =
            monte_carlo_fidelity(&Circuit::new(1), &Calibration::default(), opts).unwrap_err();
        assert_eq!(err, MonteCarloError::ZeroShots);
        assert!(err.to_string().contains("at least one shot"));
    }

    #[test]
    fn error_free_fraction_of_empty_result_is_zero_not_nan() {
        let empty = MonteCarloResult {
            mean_fidelity: 0.0,
            std_error: 0.0,
            error_free_shots: 0,
            shots: 0,
        };
        let fraction = empty.error_free_fraction();
        assert!(!fraction.is_nan());
        assert_eq!(fraction, 0.0);
    }
}
