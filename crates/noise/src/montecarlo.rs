//! Monte Carlo (quantum-trajectory) noise simulation, cross-validating the
//! paper's analytic success model (§2.6).
//!
//! The analytic model multiplies "no gate error" probabilities with a
//! whole-program decoherence factor. This module checks that model
//! empirically: it samples noisy executions of the actual circuit on the
//! statevector simulator, injecting
//!
//! * **gate errors** — after each gate, with the calibrated probability, a
//!   uniformly random non-identity Pauli on the gate's operands;
//! * **decoherence** — per qubit and per scheduled time interval (busy and
//!   idle alike, from the ASAP schedule), a Pauli-twirled
//!   relaxation/dephasing channel: `X` with probability
//!   `(1 − e^{−dt/T1})/2` and `Z` with `(1 − e^{−dt/T2})/2`;
//!
//! and reports the mean fidelity with the ideal output. Two analytic
//! quantities are directly validated:
//!
//! * the fraction of completely error-free trajectories is an unbiased
//!   estimator of the model's `p_gates · p_coherence`-style product, and
//! * mean fidelity ≥ that product — erred trajectories retain some
//!   overlap — with the *gap* measuring how pessimistic the paper's
//!   "success = nothing went wrong" approximation is.

use crate::Calibration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trios_ir::{Circuit, Gate, Instruction, Qubit};
use trios_schedule::schedule_asap;
use trios_sim::{SimError, State};

/// Configuration of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloOptions {
    /// Number of sampled trajectories.
    pub shots: usize,
    /// RNG seed (trajectories are reproducible per seed).
    pub seed: u64,
    /// Inject per-gate Pauli errors at the calibrated rates.
    pub gate_errors: bool,
    /// Inject time-resolved relaxation/dephasing from the ASAP schedule.
    pub decoherence: bool,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            shots: 200,
            seed: 0,
            gate_errors: true,
            decoherence: true,
        }
    }
}

/// Aggregate result of a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Mean fidelity `|⟨ψ_ideal|ψ_shot⟩|²` over trajectories.
    pub mean_fidelity: f64,
    /// Standard error of the mean fidelity.
    pub std_error: f64,
    /// Trajectories in which no error of any kind was injected.
    pub error_free_shots: usize,
    /// Total trajectories sampled.
    pub shots: usize,
}

impl MonteCarloResult {
    /// Fraction of trajectories with no injected error — the Monte Carlo
    /// estimate of the analytic model's "nothing went wrong" probability.
    pub fn error_free_fraction(&self) -> f64 {
        self.error_free_shots as f64 / self.shots as f64
    }
}

/// Runs `options.shots` noisy trajectories of `circuit` under
/// `calibration` and reports fidelity statistics against the noiseless
/// output.
///
/// Measurements are skipped (fidelity is computed on the pre-measurement
/// state); readout error is a classical per-bit flip best handled
/// analytically, as [`estimate_success`](crate::estimate_success) does.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] if the circuit is too wide to
/// simulate densely.
///
/// # Panics
///
/// Panics if `options.shots == 0`.
pub fn monte_carlo_fidelity(
    circuit: &Circuit,
    calibration: &Calibration,
    options: MonteCarloOptions,
) -> Result<MonteCarloResult, SimError> {
    assert!(options.shots > 0, "need at least one shot");
    let ideal = State::run(circuit)?;
    let schedule = schedule_asap(circuit, &calibration.durations);
    let n = circuit.num_qubits();
    let mut rng = StdRng::seed_from_u64(options.seed);

    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut error_free = 0usize;
    for shot in 0..options.shots {
        let mut state = State::zero(n)?;
        let mut erred = false;
        // Per-qubit time already accounted for by decoherence injection.
        let mut qubit_clock = vec![0.0f64; n];
        for op in schedule.ops() {
            let instr = &op.instruction;
            if instr.gate().is_measurement() {
                continue;
            }
            if options.decoherence {
                // Idle + gate time since this qubit's last update.
                for q in instr.qubits() {
                    let dt = op.end_us() - qubit_clock[q.index()];
                    qubit_clock[q.index()] = op.end_us();
                    erred |= inject_decoherence(&mut state, &mut rng, q.index(), dt, calibration);
                }
            }
            state.apply(instr);
            if options.gate_errors {
                let rate = match instr.gate().arity() {
                    1 => calibration.one_qubit_error,
                    _ => calibration.two_qubit_error,
                };
                if rng.gen_bool(rate) {
                    inject_random_pauli(&mut state, &mut rng, instr.qubits());
                    erred = true;
                }
            }
        }
        if options.decoherence {
            // Trailing idle up to circuit end.
            let total = schedule.total_duration_us();
            for (q, clock) in qubit_clock.iter().enumerate() {
                let dt = total - clock;
                erred |= inject_decoherence(&mut state, &mut rng, q, dt, calibration);
            }
        }
        if !erred {
            error_free += 1;
        }
        let fidelity = ideal.fidelity(&state);
        // Welford's online mean/variance.
        let delta = fidelity - mean;
        mean += delta / (shot + 1) as f64;
        m2 += delta * (fidelity - mean);
    }
    let variance = if options.shots > 1 {
        m2 / (options.shots - 1) as f64
    } else {
        0.0
    };
    Ok(MonteCarloResult {
        mean_fidelity: mean,
        std_error: (variance / options.shots as f64).sqrt(),
        error_free_shots: error_free,
        shots: options.shots,
    })
}

/// Applies a uniformly random non-identity Pauli over `qubits`.
fn inject_random_pauli(state: &mut State, rng: &mut StdRng, qubits: &[Qubit]) {
    let options = 4usize.pow(qubits.len() as u32);
    let pick = rng.gen_range(1..options); // 0 = identity, excluded
    for (i, q) in qubits.iter().enumerate() {
        let pauli = (pick >> (2 * i)) & 0b11;
        let gate = match pauli {
            0 => continue,
            1 => Gate::X,
            2 => Gate::Y,
            _ => Gate::Z,
        };
        state.apply(&Instruction::new(gate, &[*q]));
    }
}

/// Pauli-twirled relaxation/dephasing on one qubit over `dt` µs. Returns
/// `true` if an error was injected.
fn inject_decoherence(
    state: &mut State,
    rng: &mut StdRng,
    qubit: usize,
    dt: f64,
    calibration: &Calibration,
) -> bool {
    if dt <= 0.0 {
        return false;
    }
    let q = Qubit::new(qubit);
    let mut erred = false;
    let p_relax = 0.5 * (1.0 - (-dt / calibration.t1_us).exp());
    if rng.gen_bool(p_relax.clamp(0.0, 1.0)) {
        state.apply(&Instruction::new(Gate::X, &[q]));
        erred = true;
    }
    let p_dephase = 0.5 * (1.0 - (-dt / calibration.t2_us).exp());
    if rng.gen_bool(p_dephase.clamp(0.0, 1.0)) {
        state.apply(&Instruction::new(Gate::Z, &[q]));
        erred = true;
    }
    erred
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_success;

    fn toffoli_program() -> Circuit {
        let mut c = Circuit::new(3);
        c.x(0).x(1).ccx(0, 1, 2);
        c
    }

    fn gate_errors_only(shots: usize, seed: u64) -> MonteCarloOptions {
        MonteCarloOptions {
            shots,
            seed,
            gate_errors: true,
            decoherence: false,
        }
    }

    #[test]
    fn noiseless_run_has_unit_fidelity() {
        let opts = MonteCarloOptions {
            shots: 10,
            seed: 1,
            gate_errors: false,
            decoherence: false,
        };
        let r = monte_carlo_fidelity(&toffoli_program(), &Calibration::default(), opts).unwrap();
        assert!((r.mean_fidelity - 1.0).abs() < 1e-12);
        assert_eq!(r.error_free_shots, 10);
        assert_eq!(r.std_error, 0.0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let cal = Calibration::default();
        let a = monte_carlo_fidelity(&toffoli_program(), &cal, gate_errors_only(50, 9)).unwrap();
        let b = monte_carlo_fidelity(&toffoli_program(), &cal, gate_errors_only(50, 9)).unwrap();
        let c = monte_carlo_fidelity(&toffoli_program(), &cal, gate_errors_only(50, 10)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn error_free_fraction_matches_analytic_gate_model() {
        // A circuit long enough that p_gates is meaningfully below 1.
        let mut c = Circuit::new(3);
        for _ in 0..10 {
            c.cx(0, 1).cx(1, 2).h(0);
        }
        let cal = Calibration::default(); // e2q = 0.0147
        let analytic = estimate_success(&c, &cal);
        let mc = monte_carlo_fidelity(&c, &cal, gate_errors_only(4000, 3)).unwrap();
        // Binomial check: error-free fraction estimates p_gates.
        let p = analytic.p_gates;
        let sigma = (p * (1.0 - p) / 4000.0).sqrt();
        assert!(
            (mc.error_free_fraction() - p).abs() < 4.0 * sigma,
            "mc {} vs analytic {} (4σ = {})",
            mc.error_free_fraction(),
            p,
            4.0 * sigma
        );
        // Fidelity can only exceed the "nothing went wrong" bound.
        assert!(mc.mean_fidelity >= p - 4.0 * sigma);
    }

    #[test]
    fn analytic_model_lower_bounds_fidelity() {
        // Versus pure unitary-noise fidelity, the paper's "success = no
        // error happened" product is a *lower* bound: erred trajectories
        // keep some overlap. The gap is real and circuit-dependent — a
        // Pauli landing on a wire that is in a computational basis state
        // (Z) or a |±⟩ state (X) does no damage at all — so we assert the
        // bound plus a generous cap, and assert tightness separately for
        // phase-sensitive circuits below.
        let mut c = Circuit::new(4);
        for _ in 0..6 {
            c.cx(0, 1).cx(2, 3).cx(0, 2).cx(2, 3).h(1).t(0);
        }
        let cal = Calibration::default();
        let analytic = estimate_success(&c, &cal).p_gates;
        let mc = monte_carlo_fidelity(&c, &cal, gate_errors_only(3000, 5)).unwrap();
        assert!(mc.mean_fidelity >= analytic - 0.03);
        assert!(mc.mean_fidelity <= 1.0 + 1e-12);
    }

    #[test]
    fn model_is_tight_for_phase_sensitive_circuits() {
        // All qubits in superposition with irrational phases: nearly every
        // injected Pauli destroys the overlap, so mean fidelity hugs the
        // error-free fraction.
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        for _ in 0..8 {
            c.t(0).cx(0, 1).rz(0.7, 1).cx(1, 2).t(2).cx(0, 2);
        }
        let cal = Calibration::default();
        let mc = monte_carlo_fidelity(&c, &cal, gate_errors_only(3000, 5)).unwrap();
        let gap = mc.mean_fidelity - mc.error_free_fraction();
        assert!(
            gap.abs() < 0.06,
            "gap {gap} too large: error-free {} vs fidelity {}",
            mc.error_free_fraction(),
            mc.mean_fidelity
        );
    }

    #[test]
    fn decoherence_lowers_fidelity_of_idle_heavy_circuits() {
        // Long idle stretch on a spectator qubit in superposition.
        let mut c = Circuit::new(2);
        c.h(1);
        for _ in 0..60 {
            c.x(0).x(0);
        }
        c.h(1);
        let cal = Calibration::default();
        let without = MonteCarloOptions {
            shots: 300,
            seed: 2,
            gate_errors: false,
            decoherence: false,
        };
        let with = MonteCarloOptions {
            decoherence: true,
            ..without
        };
        let clean = monte_carlo_fidelity(&c, &cal, without).unwrap();
        let noisy = monte_carlo_fidelity(&c, &cal, with).unwrap();
        assert!((clean.mean_fidelity - 1.0).abs() < 1e-12);
        assert!(noisy.mean_fidelity < 0.95);
    }

    #[test]
    fn rejects_oversized_circuits() {
        let c = Circuit::new(30);
        assert!(
            monte_carlo_fidelity(&c, &Calibration::default(), MonteCarloOptions::default())
                .is_err()
        );
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn rejects_zero_shots() {
        let opts = MonteCarloOptions {
            shots: 0,
            ..MonteCarloOptions::default()
        };
        let _ = monte_carlo_fidelity(&Circuit::new(1), &Calibration::default(), opts);
    }
}
