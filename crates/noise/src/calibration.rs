//! Device calibration data.

use trios_schedule::GateDurations;

/// Error rates and coherence times of a device.
///
/// The constructor [`Calibration::johannesburg_2020_08_19`] carries the
/// exact numbers the paper reports for its simulations (§5.2): average
/// T1 = 70.87 µs, T2 = 72.72 µs, two-qubit gate error 0.0147, one-qubit
/// gate error 0.0004. The readout error is not stated numerically; the
/// paper says measurement error is "on the same order of magnitude as CNOT
/// gates" (§2.3), so 0.02 is used and recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Relaxation time T1 (µs).
    pub t1_us: f64,
    /// Dephasing time T2 (µs).
    pub t2_us: f64,
    /// Single-qubit gate error probability.
    pub one_qubit_error: f64,
    /// Two-qubit gate error probability.
    pub two_qubit_error: f64,
    /// Readout (measurement) error probability.
    pub readout_error: f64,
    /// Gate durations.
    pub durations: GateDurations,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::johannesburg_2020_08_19()
    }
}

impl Calibration {
    /// The paper's IBM Johannesburg calibration snapshot (2020-08-19).
    pub fn johannesburg_2020_08_19() -> Self {
        Calibration {
            t1_us: 70.87,
            t2_us: 72.72,
            one_qubit_error: 0.0004,
            two_qubit_error: 0.0147,
            readout_error: 0.02,
            durations: GateDurations::johannesburg(),
        }
    }

    /// Gate-error improvement: gate and readout error rates divided by
    /// `factor`, **coherence times unchanged**. This is the paper's
    /// benchmark-simulation model: Figure 12's caption sweeps "gate error
    /// rates", and the Figure 9/11 baselines (success rates near zero at
    /// 20× with a 31× line-topology ratio) are only reproducible when the
    /// decoherence term keeps today's T1/T2 — see EXPERIMENTS.md.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn improved(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "improvement factor must be positive");
        Calibration {
            t1_us: self.t1_us,
            t2_us: self.t2_us,
            one_qubit_error: self.one_qubit_error / factor,
            two_qubit_error: self.two_qubit_error / factor,
            readout_error: self.readout_error / factor,
            durations: self.durations,
        }
    }

    /// Uniform improvement: like [`Calibration::improved`] but coherence
    /// times also scale up by `factor` — an optimistic ablation of the
    /// paper's model in which decoherence improves alongside gates.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn improved_uniform(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "improvement factor must be positive");
        Calibration {
            t1_us: self.t1_us * factor,
            t2_us: self.t2_us * factor,
            ..self.improved(factor)
        }
    }

    /// The paper's near-future simulation point: Johannesburg with gate
    /// errors improved 20×.
    pub fn near_future() -> Self {
        Calibration::johannesburg_2020_08_19().improved(20.0)
    }

    /// Samples a per-edge two-qubit error vector around this calibration's
    /// average, for feeding the noise-aware mapper and router.
    ///
    /// Real devices report per-coupler errors from daily randomized
    /// benchmarking that scatter widely around the mean (§2.3 attributes
    /// this to "manufacturing imperfections or calibration error"). The
    /// sample is log-uniform within `spread`× either side of the mean —
    /// e.g. `spread = 3.0` gives errors in `[mean/3, mean·3]` — seeded for
    /// reproducibility, clamped below 1.
    ///
    /// # Panics
    ///
    /// Panics if `spread < 1.0`.
    pub fn sampled_edge_errors(&self, num_edges: usize, spread: f64, seed: u64) -> Vec<f64> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        assert!(spread >= 1.0, "spread must be at least 1.0");
        let mut rng = StdRng::seed_from_u64(seed);
        let ln_spread = spread.ln();
        (0..num_edges)
            .map(|_| {
                let factor = rng.gen_range(-ln_spread..=ln_spread).exp();
                (self.two_qubit_error * factor).min(0.999_999)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn johannesburg_matches_paper_numbers() {
        let c = Calibration::johannesburg_2020_08_19();
        assert_eq!(c.t1_us, 70.87);
        assert_eq!(c.t2_us, 72.72);
        assert_eq!(c.two_qubit_error, 0.0147);
        assert_eq!(c.one_qubit_error, 0.0004);
    }

    #[test]
    fn improvement_scales_gate_errors_only() {
        let base = Calibration::johannesburg_2020_08_19();
        let better = base.improved(20.0);
        assert!((better.two_qubit_error - base.two_qubit_error / 20.0).abs() < 1e-15);
        assert!((better.readout_error - base.readout_error / 20.0).abs() < 1e-15);
        assert_eq!(better.t1_us, base.t1_us, "T1 must not scale");
        assert_eq!(better.t2_us, base.t2_us, "T2 must not scale");
        assert_eq!(better.durations, base.durations);
    }

    #[test]
    fn uniform_improvement_scales_coherence_too() {
        let base = Calibration::johannesburg_2020_08_19();
        let better = base.improved_uniform(20.0);
        assert!((better.two_qubit_error - base.two_qubit_error / 20.0).abs() < 1e-15);
        assert!((better.t1_us - base.t1_us * 20.0).abs() < 1e-9);
    }

    #[test]
    fn near_future_is_20x() {
        let a = Calibration::near_future();
        let b = Calibration::johannesburg_2020_08_19().improved(20.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn improvement_rejects_nonpositive() {
        Calibration::default().improved(0.0);
    }

    #[test]
    fn sampled_edge_errors_stay_in_band_and_are_seeded() {
        let cal = Calibration::johannesburg_2020_08_19();
        let a = cal.sampled_edge_errors(23, 3.0, 7);
        let b = cal.sampled_edge_errors(23, 3.0, 7);
        let c = cal.sampled_edge_errors(23, 3.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 23);
        for &e in &a {
            assert!(e >= cal.two_qubit_error / 3.0 - 1e-12);
            assert!(e <= cal.two_qubit_error * 3.0 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1.0")]
    fn sampled_edge_errors_reject_tight_spread() {
        Calibration::default().sampled_edge_errors(5, 0.5, 0);
    }
}
