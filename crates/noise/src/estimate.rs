//! The paper's success-probability model (§2.6).

use crate::Calibration;
use std::fmt;
use trios_ir::{Circuit, Gate};
use trios_schedule::schedule_asap;

/// Breakdown of a success-probability estimate.
///
/// The paper's simplified model (§2.6): the program succeeds if **no gate
/// errs** and **no decoherence occurs**, i.e.
///
/// ```text
/// P = Π_gates (1 − e_gate) · Π_meas (1 − e_readout) · exp(−Δ/T1 − Δ/T2)
/// ```
///
/// with Δ the ASAP-scheduled total duration. This is a close upper bound on
/// real success rate and is what Figures 6, 8, 9, 11, and 12 report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessEstimate {
    /// Probability that no gate error occurs.
    pub p_gates: f64,
    /// Probability that no readout error occurs.
    pub p_readout: f64,
    /// Probability that no decoherence occurs over the program duration.
    pub p_coherence: f64,
    /// Total program duration Δ (µs).
    pub duration_us: f64,
    /// One-qubit gates counted.
    pub one_qubit_gates: usize,
    /// Two-qubit gates counted (SWAP counts as 3, Toffoli as 6).
    pub two_qubit_gates: usize,
    /// Measurements counted.
    pub measurements: usize,
}

impl SuccessEstimate {
    /// The overall success probability.
    pub fn probability(&self) -> f64 {
        self.p_gates * self.p_readout * self.p_coherence
    }
}

impl fmt::Display for SuccessEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P={:.4} (gates {:.4} × readout {:.4} × coherence {:.4}, Δ={:.2}µs)",
            self.probability(),
            self.p_gates,
            self.p_readout,
            self.p_coherence,
            self.duration_us
        )
    }
}

/// Estimates the success probability of `circuit` under `calibration`.
///
/// The circuit is typically fully lowered; structural gates that remain
/// are costed by their standard expansions (SWAP = 3 two-qubit gates,
/// Toffoli = 6 two-qubit + 2 one-qubit gates) so the estimate stays
/// meaningful at every pipeline stage.
pub fn estimate_success(circuit: &Circuit, calibration: &Calibration) -> SuccessEstimate {
    let mut n1 = 0usize;
    let mut n2 = 0usize;
    let mut nm = 0usize;
    for instr in circuit.iter() {
        match instr.gate() {
            Gate::Measure => nm += 1,
            Gate::Swap => n2 += 3,
            Gate::Ccx => {
                n2 += 6;
                n1 += 2;
            }
            Gate::Ccz => {
                // CCZ lowers to a CCX conjugated by Hadamards on the
                // target, so its cost is the Toffoli's plus two 1q gates.
                n2 += 6;
                n1 += 4;
            }
            Gate::Cswap => {
                n2 += 8;
                n1 += 2;
            }
            g if g.arity() == 1 => n1 += 1,
            _ => n2 += 1,
        }
    }
    let schedule = schedule_asap(circuit, &calibration.durations);
    let delta = schedule.total_duration_us();
    let p_gates = (1.0 - calibration.one_qubit_error).powi(n1 as i32)
        * (1.0 - calibration.two_qubit_error).powi(n2 as i32);
    let p_readout = (1.0 - calibration.readout_error).powi(nm as i32);
    let p_coherence = (-delta / calibration.t1_us - delta / calibration.t2_us).exp();
    SuccessEstimate {
        p_gates,
        p_readout,
        p_coherence,
        duration_us: delta,
        one_qubit_gates: n1,
        two_qubit_gates: n2,
        measurements: nm,
    }
}

/// How crosstalk enters a success estimate.
///
/// Simultaneous two-qubit gates on coupled edges suffer extra error
/// (paper §2.3); `error_per_conflict` is the additional failure
/// probability charged to each such pair. The policy decides which
/// schedule the program runs under:
///
/// * [`CrosstalkPolicy::Ignore`] — the paper's model: ASAP schedule, no
///   crosstalk term (what Figures 6–12 report).
/// * [`CrosstalkPolicy::Charge`] — ASAP schedule, each conflicting pair
///   multiplies success by `1 − error_per_conflict`.
/// * [`CrosstalkPolicy::Avoid`] — the crosstalk-aware schedule
///   ([`schedule_crosstalk_aware`](trios_schedule::schedule_crosstalk_aware)):
///   zero conflicts by construction, but a longer duration and therefore
///   more decoherence. Whether avoiding beats charging is workload- and
///   rate-dependent — the ablation bench sweeps it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrosstalkPolicy {
    /// ASAP schedule, crosstalk not modeled (the paper's setting).
    Ignore,
    /// ASAP schedule; charge each simultaneous coupled pair.
    Charge {
        /// Extra failure probability per conflicting pair.
        error_per_conflict: f64,
    },
    /// Serialize coupled pairs instead (longer Δ, zero conflicts).
    Avoid,
}

/// [`estimate_success`] extended with a crosstalk model over the routed
/// circuit on `topology`.
///
/// # Panics
///
/// Panics if `error_per_conflict` is outside `[0, 1]`.
pub fn estimate_success_with_crosstalk(
    circuit: &Circuit,
    calibration: &Calibration,
    topology: &trios_topology::Topology,
    policy: CrosstalkPolicy,
) -> SuccessEstimate {
    use trios_schedule::{crosstalk_conflicts, schedule_crosstalk_aware};
    match policy {
        CrosstalkPolicy::Ignore => estimate_success(circuit, calibration),
        CrosstalkPolicy::Charge { error_per_conflict } => {
            assert!(
                (0.0..=1.0).contains(&error_per_conflict),
                "error_per_conflict must be a probability"
            );
            let mut estimate = estimate_success(circuit, calibration);
            let schedule = schedule_asap(circuit, &calibration.durations);
            let conflicts = crosstalk_conflicts(&schedule, topology);
            estimate.p_gates *= (1.0 - error_per_conflict).powi(conflicts as i32);
            estimate
        }
        CrosstalkPolicy::Avoid => {
            // Same gate arithmetic, but duration comes from the
            // serialized (conflict-free) schedule.
            let mut estimate = estimate_success(circuit, calibration);
            let schedule = schedule_crosstalk_aware(circuit, &calibration.durations, topology);
            let delta = schedule.total_duration_us();
            estimate.duration_us = delta;
            estimate.p_coherence = (-delta / calibration.t1_us - delta / calibration.t2_us).exp();
            estimate
        }
    }
}

/// [`estimate_success`] with **per-edge** two-qubit error rates: each
/// two-qubit gate is charged the error of the specific coupler it runs on.
///
/// This is the evaluation counterpart of the noise-aware compiler options
/// (`InitialMapping::NoiseAware`, `PathMetric::EdgeWeights`): a compiler
/// that steers traffic onto reliable couplers only shows its advantage
/// under an estimator that knows couplers differ.
///
/// `edges` and `edge_errors` run in parallel (the order returned by
/// `Topology::edges()`). The circuit must be routed: every two-qubit gate
/// must act on one of the listed edges.
///
/// # Panics
///
/// Panics if `edges` and `edge_errors` lengths differ, or if a two-qubit
/// gate acts on a pair that is not a listed edge.
pub fn estimate_success_with_edge_errors(
    circuit: &Circuit,
    calibration: &Calibration,
    edges: &[(usize, usize)],
    edge_errors: &[f64],
) -> SuccessEstimate {
    assert_eq!(
        edges.len(),
        edge_errors.len(),
        "one error rate per edge required"
    );
    let error_of: std::collections::HashMap<(usize, usize), f64> = edges
        .iter()
        .copied()
        .zip(edge_errors.iter().copied())
        .collect();

    let mut n1 = 0usize;
    let mut n2 = 0usize;
    let mut nm = 0usize;
    let mut p_gates = 1.0f64;
    for instr in circuit.iter() {
        let gate = instr.gate();
        match gate {
            Gate::Measure => nm += 1,
            g if g.arity() == 1 => {
                n1 += 1;
                p_gates *= 1.0 - calibration.one_qubit_error;
            }
            g if g.arity() == 2 => {
                let (a, b) = (instr.qubit(0).index(), instr.qubit(1).index());
                let key = (a.min(b), a.max(b));
                let e = *error_of
                    .get(&key)
                    .unwrap_or_else(|| panic!("two-qubit gate on non-edge {key:?}"));
                // SWAPs (3 CX on one coupler) may survive in un-lowered
                // circuits; charge them accordingly.
                let reps = if gate == Gate::Swap { 3 } else { 1 };
                n2 += reps;
                p_gates *= (1.0 - e).powi(reps as i32);
            }
            g => panic!("estimate_success_with_edge_errors needs a routed circuit, got {g:?}"),
        }
    }
    let schedule = schedule_asap(circuit, &calibration.durations);
    let delta = schedule.total_duration_us();
    let p_readout = (1.0 - calibration.readout_error).powi(nm as i32);
    let p_coherence = (-delta / calibration.t1_us - delta / calibration.t2_us).exp();
    SuccessEstimate {
        p_gates,
        p_readout,
        p_coherence,
        duration_us: delta,
        one_qubit_gates: n1,
        two_qubit_gates: n2,
        measurements: nm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::johannesburg_2020_08_19()
    }

    #[test]
    fn empty_circuit_succeeds_certainly() {
        let e = estimate_success(&Circuit::new(3), &cal());
        assert_eq!(e.probability(), 1.0);
        assert_eq!(e.duration_us, 0.0);
    }

    #[test]
    fn hand_computed_single_cx() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let e = estimate_success(&c, &cal());
        let expected_gates = 1.0 - 0.0147;
        assert!((e.p_gates - expected_gates).abs() < 1e-12);
        let delta = 0.559;
        let expected_coh = (-delta / 70.87 - delta / 72.72f64).exp();
        assert!((e.p_coherence - expected_coh).abs() < 1e-12);
        assert!((e.probability() - expected_gates * expected_coh).abs() < 1e-12);
    }

    #[test]
    fn more_gates_lower_success() {
        let mut small = Circuit::new(2);
        small.cx(0, 1);
        let mut big = Circuit::new(2);
        for _ in 0..10 {
            big.cx(0, 1);
        }
        assert!(
            estimate_success(&big, &cal()).probability()
                < estimate_success(&small, &cal()).probability()
        );
    }

    #[test]
    fn swap_costs_three_cx() {
        let mut swap = Circuit::new(2);
        swap.swap(0, 1);
        let mut three = Circuit::new(2);
        three.cx(0, 1).cx(1, 0).cx(0, 1);
        let a = estimate_success(&swap, &cal());
        let b = estimate_success(&three, &cal());
        assert_eq!(a.two_qubit_gates, b.two_qubit_gates);
        assert!((a.probability() - b.probability()).abs() < 1e-12);
    }

    #[test]
    fn ccz_costs_at_least_as_many_one_qubit_gates_as_ccx() {
        // Regression: CCZ used to count 6 two-qubit gates but *zero*
        // one-qubit gates, making it look cheaper than the CCX it lowers
        // to (CCZ = H·CCX·H on the target).
        let mut ccx = Circuit::new(3);
        ccx.ccx(0, 1, 2);
        let mut ccz = Circuit::new(3);
        ccz.ccz(0, 1, 2);
        let ex = estimate_success(&ccx, &cal());
        let ez = estimate_success(&ccz, &cal());
        assert_eq!(ez.two_qubit_gates, ex.two_qubit_gates);
        assert!(
            ez.one_qubit_gates >= ex.one_qubit_gates,
            "CCZ 1q cost {} must be >= CCX 1q cost {}",
            ez.one_qubit_gates,
            ex.one_qubit_gates
        );
        assert_eq!(ez.one_qubit_gates, ex.one_qubit_gates + 2);
        assert!(ez.p_gates <= ex.p_gates);
    }

    #[test]
    fn improvement_raises_success() {
        let mut c = Circuit::new(2);
        for _ in 0..50 {
            c.cx(0, 1);
        }
        c.measure_all();
        let base = estimate_success(&c, &cal()).probability();
        let better = estimate_success(&c, &cal().improved(20.0)).probability();
        assert!(better > base);
        assert!(better < 1.0);
    }

    #[test]
    fn readout_error_counts_per_measurement() {
        let mut c = Circuit::new(3);
        c.measure_all();
        let e = estimate_success(&c, &cal());
        assert_eq!(e.measurements, 3);
        assert!((e.p_readout - (1.0f64 - 0.02).powi(3)).abs() < 1e-12);
    }

    #[test]
    fn parallel_circuits_decohere_less_than_serial() {
        // Same gate count, different depth → different Δ → different P.
        let mut serial = Circuit::new(2);
        for _ in 0..20 {
            serial.cx(0, 1);
        }
        let mut parallel = Circuit::new(4);
        for _ in 0..10 {
            parallel.cx(0, 1).cx(2, 3);
        }
        let s = estimate_success(&serial, &cal());
        let p = estimate_success(&parallel, &cal());
        assert_eq!(s.two_qubit_gates, p.two_qubit_gates);
        assert!(p.p_coherence > s.p_coherence);
    }

    #[test]
    fn display_is_informative() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let text = estimate_success(&c, &cal()).to_string();
        assert!(text.contains("P="));
        assert!(text.contains("Δ="));
    }

    #[test]
    fn crosstalk_policies_order_as_expected() {
        use trios_topology::line;
        // Two parallel coupled CXs on a 4-line.
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let topo = line(4);
        let calibration = cal();
        let ignore =
            estimate_success_with_crosstalk(&c, &calibration, &topo, CrosstalkPolicy::Ignore);
        let charge = estimate_success_with_crosstalk(
            &c,
            &calibration,
            &topo,
            CrosstalkPolicy::Charge {
                error_per_conflict: 0.05,
            },
        );
        let avoid =
            estimate_success_with_crosstalk(&c, &calibration, &topo, CrosstalkPolicy::Avoid);
        // Charging one conflict multiplies gates by 0.95 exactly.
        assert!((charge.p_gates - ignore.p_gates * 0.95).abs() < 1e-12);
        assert_eq!(charge.duration_us, ignore.duration_us);
        // Avoiding doubles the duration and restores the gate term.
        assert!((avoid.duration_us - 2.0 * ignore.duration_us).abs() < 1e-12);
        assert_eq!(avoid.p_gates, ignore.p_gates);
        assert!(avoid.p_coherence < ignore.p_coherence);
        // At this rate, serializing two short gates beats eating the
        // conflict.
        assert!(avoid.probability() > charge.probability());
    }

    #[test]
    fn crosstalk_ignore_matches_plain_estimate() {
        use trios_topology::line;
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure(2);
        let a = estimate_success(&c, &cal());
        let b = estimate_success_with_crosstalk(&c, &cal(), &line(3), CrosstalkPolicy::Ignore);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn crosstalk_charge_validates_rate() {
        use trios_topology::line;
        let c = Circuit::new(2);
        estimate_success_with_crosstalk(
            &c,
            &cal(),
            &line(2),
            CrosstalkPolicy::Charge {
                error_per_conflict: 1.5,
            },
        );
    }

    #[test]
    fn edge_error_estimate_matches_uniform_when_errors_are_uniform() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).measure(0);
        let calibration = cal();
        let edges = [(0usize, 1usize), (1, 2)];
        let errors = [calibration.two_qubit_error; 2];
        let per_edge = estimate_success_with_edge_errors(&c, &calibration, &edges, &errors);
        let uniform = estimate_success(&c, &calibration);
        assert!((per_edge.probability() - uniform.probability()).abs() < 1e-12);
    }

    #[test]
    fn edge_error_estimate_penalizes_bad_couplers() {
        let mut on_good = Circuit::new(3);
        on_good.cx(0, 1);
        let mut on_bad = Circuit::new(3);
        on_bad.cx(1, 2);
        let calibration = cal();
        let edges = [(0usize, 1usize), (1, 2)];
        let errors = [0.001, 0.2];
        let good = estimate_success_with_edge_errors(&on_good, &calibration, &edges, &errors);
        let bad = estimate_success_with_edge_errors(&on_bad, &calibration, &edges, &errors);
        assert!(good.probability() > bad.probability());
        assert!((bad.p_gates - 0.8).abs() < 1e-12);
    }

    #[test]
    fn edge_error_estimate_charges_swaps_three_times() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let e = estimate_success_with_edge_errors(&c, &cal(), &[(0, 1)], &[0.1]);
        assert_eq!(e.two_qubit_gates, 3);
        assert!((e.p_gates - 0.9f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn edge_error_estimate_rejects_unrouted_circuits() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        estimate_success_with_edge_errors(&c, &cal(), &[(0, 1), (1, 2)], &[0.01, 0.01]);
    }
}
