//! ALAP (as-late-as-possible) scheduling and per-qubit idle analysis.
//!
//! ASAP starts every gate as early as dependencies allow; ALAP pushes
//! every gate as late as possible within the same total duration. ALAP is
//! the standard NISQ choice when decoherence matters (paper §2.4 cites
//! scheduling "to minimize errors"): qubits stay in their freshly-prepared
//! `|0⟩` states longer and idle *after* their last gate less, which is
//! where dephasing hurts most.

use crate::{schedule_asap, GateDurations, Schedule, ScheduledOp};
use trios_ir::Circuit;

/// Schedules `circuit` as-late-as-possible: the circuit is walked in
/// reverse, each instruction ending when the earliest later instruction on
/// any of its qubits starts. The total duration equals the ASAP duration
/// (both are the critical-path length).
pub fn schedule_alap(circuit: &Circuit, durations: &GateDurations) -> Schedule {
    // Reverse pass: latest allowed end per qubit, measured backward from
    // the circuit end (time 0 = end of circuit).
    let mut qubit_busy_from = vec![0.0f64; circuit.num_qubits()];
    let mut ends_backward = vec![0.0f64; circuit.len()];
    let mut total = 0.0f64;
    for (i, instr) in circuit.iter().enumerate().rev() {
        let end_back = instr
            .qubits()
            .iter()
            .map(|q| qubit_busy_from[q.index()])
            .fold(0.0, f64::max);
        let duration = durations.of(instr.gate());
        ends_backward[i] = end_back;
        for q in instr.qubits() {
            qubit_busy_from[q.index()] = end_back + duration;
        }
        total = total.max(end_back + duration);
    }
    // Convert backward times into forward start times.
    let ops = circuit
        .iter()
        .enumerate()
        .map(|(i, instr)| {
            let duration = durations.of(instr.gate());
            ScheduledOp {
                instruction: *instr,
                start_us: total - ends_backward[i] - duration,
                duration_us: duration,
            }
        })
        .collect();
    Schedule::from_parts(ops, total)
}

/// Per-qubit idle-time report for a schedule: how long each qubit spends
/// waiting between its first and last scheduled operation.
///
/// Idle windows are where decoherence accrues on *live* data; comparing
/// the ASAP and ALAP reports shows how much exposure scheduling alone can
/// remove.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleReport {
    per_qubit: Vec<f64>,
}

impl IdleReport {
    /// Idle time (µs) of each qubit between its first and last op.
    pub fn per_qubit(&self) -> &[f64] {
        &self.per_qubit
    }

    /// Total idle time summed over qubits (µs).
    pub fn total_us(&self) -> f64 {
        self.per_qubit.iter().sum()
    }

    /// The most idle qubit as `(qubit, idle µs)`, if any qubit is active.
    pub fn worst(&self) -> Option<(usize, f64)> {
        self.per_qubit
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, t)| t > 0.0)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("idle times are finite"))
    }
}

/// Computes the idle-time report of a schedule over `num_qubits` qubits.
///
/// A qubit's idle time is its busy window (first-op start to last-op end)
/// minus the time it spends inside operations.
pub fn idle_report(schedule: &Schedule, num_qubits: usize) -> IdleReport {
    let mut first = vec![f64::INFINITY; num_qubits];
    let mut last = vec![0.0f64; num_qubits];
    let mut busy = vec![0.0f64; num_qubits];
    for op in schedule.ops() {
        for q in op.instruction.qubits() {
            let q = q.index();
            first[q] = first[q].min(op.start_us);
            last[q] = last[q].max(op.end_us());
            busy[q] += op.duration_us;
        }
    }
    let per_qubit = (0..num_qubits)
        .map(|q| {
            if first[q].is_finite() {
                (last[q] - first[q] - busy[q]).max(0.0)
            } else {
                0.0
            }
        })
        .collect();
    IdleReport { per_qubit }
}

/// Convenience: the live-idle exposure (µs) of a circuit under ALAP
/// scheduling — the decoherence-relevant refinement of the paper's
/// whole-duration Δ.
pub fn alap_idle_us(circuit: &Circuit, durations: &GateDurations) -> f64 {
    idle_report(&schedule_alap(circuit, durations), circuit.num_qubits()).total_us()
}

/// The same exposure under ASAP scheduling, for comparison.
pub fn asap_idle_us(circuit: &Circuit, durations: &GateDurations) -> f64 {
    idle_report(&schedule_asap(circuit, durations), circuit.num_qubits()).total_us()
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: f64 = 0.07;
    const D2: f64 = 0.559;

    fn durations() -> GateDurations {
        GateDurations::johannesburg()
    }

    #[test]
    fn alap_total_matches_asap_total() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).h(2).cx(2, 3).cx(1, 2).measure(1);
        let asap = schedule_asap(&c, &durations());
        let alap = schedule_alap(&c, &durations());
        assert!((asap.total_duration_us() - alap.total_duration_us()).abs() < 1e-12);
    }

    #[test]
    fn alap_pushes_gates_late() {
        // h(1) has no successors on qubit 1 until cx(0,1) at the end; ALAP
        // must start it immediately before the CX, not at time 0.
        let mut c = Circuit::new(2);
        c.h(0).h(0).h(0).h(1).cx(0, 1);
        let alap = schedule_alap(&c, &durations());
        let h1 = &alap.ops()[3];
        assert!((h1.start_us - (3.0 * D1 - D1)).abs() < 1e-12);
        let asap = schedule_asap(&c, &durations());
        assert_eq!(asap.ops()[3].start_us, 0.0);
    }

    #[test]
    fn alap_respects_dependencies() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2).cx(0, 1);
        let alap = schedule_alap(&c, &durations());
        let ops = alap.ops();
        // Order on the shared qubits must be preserved.
        assert!(ops[0].end_us() <= ops[1].start_us + 1e-12);
        assert!(ops[1].end_us() <= ops[2].start_us + 1e-12);
    }

    #[test]
    fn idle_report_counts_gaps() {
        // Qubit 1 waits for qubit 0's extra H before the CX.
        let mut c = Circuit::new(2);
        c.h(0).h(0).h(1).cx(0, 1);
        let asap = schedule_asap(&c, &durations());
        let report = idle_report(&asap, 2);
        assert!((report.per_qubit()[0] - 0.0).abs() < 1e-12);
        assert!((report.per_qubit()[1] - D1).abs() < 1e-12);
        assert_eq!(report.worst(), Some((1, report.per_qubit()[1])));
    }

    #[test]
    fn alap_never_increases_live_idle_on_prep_heavy_circuits() {
        // A late-interacting ancilla: ASAP prepares it early and lets it
        // sit; ALAP prepares it just in time.
        let mut c = Circuit::new(3);
        c.h(2);
        for _ in 0..10 {
            c.cx(0, 1);
        }
        c.cx(1, 2);
        let asap_idle = asap_idle_us(&c, &durations());
        let alap_idle = alap_idle_us(&c, &durations());
        assert!(
            alap_idle < asap_idle,
            "alap {alap_idle} should beat asap {asap_idle}"
        );
        // ASAP: the ancilla is prepared at t=0 and waits through the ten
        // CX chain minus its own H duration.
        assert!((asap_idle - (10.0 * D2 - D1)).abs() < 1e-9);
        assert!(alap_idle.abs() < 1e-9);
    }

    #[test]
    fn untouched_qubits_have_zero_idle() {
        let mut c = Circuit::new(5);
        c.cx(0, 1);
        let report = idle_report(&schedule_asap(&c, &durations()), 5);
        assert_eq!(report.per_qubit()[4], 0.0);
        assert_eq!(report.total_us(), 0.0);
        assert_eq!(report.worst(), None);
    }

    #[test]
    fn empty_circuit_alap_is_empty() {
        let s = schedule_alap(&Circuit::new(2), &durations());
        assert_eq!(s.total_duration_us(), 0.0);
        assert!(s.ops().is_empty());
    }

    // The following mirror the ASAP scheduler's test suite (asap.rs) so
    // the two schedulers stay behaviorally aligned op for op.

    #[test]
    fn serial_chain_sums_durations_like_asap() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let s = schedule_alap(&c, &durations());
        assert!((s.total_duration_us() - (D1 + D2 + D1)).abs() < 1e-12);
        // A fully serial chain leaves no slack: ALAP start times equal
        // ASAP's.
        assert!((s.ops()[0].start_us - 0.0).abs() < 1e-12);
        assert!((s.ops()[1].start_us - D1).abs() < 1e-12);
        assert!((s.ops()[2].start_us - (D1 + D2)).abs() < 1e-12);
    }

    #[test]
    fn disjoint_gates_run_in_parallel_like_asap() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let s = schedule_alap(&c, &durations());
        assert!((s.ops()[0].start_us - 0.0).abs() < 1e-12);
        assert!((s.ops()[1].start_us - 0.0).abs() < 1e-12);
        assert!((s.total_duration_us() - D2).abs() < 1e-12);
    }

    #[test]
    fn gate_waits_for_latest_operand_like_asap() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cx(1, 2);
        let s = schedule_alap(&c, &durations());
        // cx(1,2) still starts at D2 (after cx(0,1)); h(2) slides late to
        // end exactly when cx(1,2) begins.
        assert!((s.ops()[2].start_us - D2).abs() < 1e-12);
        assert!((s.ops()[1].end_us() - D2).abs() < 1e-12);
    }

    #[test]
    fn swap_counts_as_three_cx_durations_like_asap() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let s = schedule_alap(&c, &durations());
        assert!((s.total_duration_us() - 3.0 * D2).abs() < 1e-12);
    }

    #[test]
    fn measurement_extends_duration_like_asap() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        let s = schedule_alap(&c, &durations());
        assert!((s.total_duration_us() - (D1 + 3.5)).abs() < 1e-12);
    }

    #[test]
    fn alap_depth_equals_asap_depth_on_every_paper_suite_circuit() {
        // Both schedulers compute the same critical path, so the total
        // duration ("schedule depth") must agree on every benchmark of
        // the paper's Table 1 — Toffoli-level and control-group alike.
        use trios_benchmarks::Benchmark;
        let d = durations();
        for b in Benchmark::ALL {
            let circuit = b.build();
            let asap = schedule_asap(&circuit, &d);
            let alap = schedule_alap(&circuit, &d);
            assert!(
                (asap.total_duration_us() - alap.total_duration_us()).abs() < 1e-9,
                "{b}: asap {} vs alap {}",
                asap.total_duration_us(),
                alap.total_duration_us()
            );
            assert_eq!(asap.ops().len(), alap.ops().len(), "{b}");
            // Every ALAP op fits the window and never starts before its
            // ASAP slot (ALAP only pushes gates later).
            for (a, l) in asap.ops().iter().zip(alap.ops()) {
                assert_eq!(a.instruction, l.instruction, "{b}");
                assert!(l.start_us >= a.start_us - 1e-9, "{b}");
                assert!(l.end_us() <= alap.total_duration_us() + 1e-9, "{b}");
            }
            // Idle exposure is finite and reported for both (whether ALAP
            // wins is workload-dependent — it trades pre-first-gate wait
            // for post-last-gate wait — so only well-formedness is
            // asserted here).
            assert!(alap_idle_us(&circuit, &d).is_finite(), "{b}");
            assert!(asap_idle_us(&circuit, &d).is_finite(), "{b}");
        }
    }
}
