//! Gate duration models.

/// Durations (in microseconds) of the primitive operations, used by the
/// ASAP scheduler to compute total program duration Δ for the coherence
/// term `exp(−Δ/T1 − Δ/T2)` of the paper's success model (§2.6).
///
/// Defaults are the paper's published IBM Johannesburg calibration from
/// 2020-08-19: two-qubit gates 0.559 µs, one-qubit gates 0.07 µs. The
/// readout duration is not stated in the paper; 3.5 µs is a typical IBM
/// value of that era and affects all compiler configurations identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDurations {
    /// Single-qubit gate duration (µs).
    pub one_qubit_us: f64,
    /// Two-qubit gate duration (µs).
    pub two_qubit_us: f64,
    /// Measurement duration (µs).
    pub measure_us: f64,
}

impl Default for GateDurations {
    fn default() -> Self {
        GateDurations::johannesburg()
    }
}

impl GateDurations {
    /// The paper's Johannesburg gate times (§5.2).
    pub fn johannesburg() -> Self {
        GateDurations {
            one_qubit_us: 0.07,
            two_qubit_us: 0.559,
            measure_us: 3.5,
        }
    }

    /// Duration of one instruction, given its arity and kind.
    ///
    /// Structural gates that the scheduler may still encounter are costed
    /// by their standard expansions: SWAP as 3 sequential two-qubit gates,
    /// Toffoli as its 6-CNOT decomposition's critical path (6 two-qubit
    /// plus 2 one-qubit gates). Fully lowered circuits never hit those
    /// branches.
    pub fn of(&self, gate: trios_ir::Gate) -> f64 {
        use trios_ir::Gate;
        match gate {
            Gate::Measure => self.measure_us,
            Gate::Swap => 3.0 * self.two_qubit_us,
            Gate::Ccx => 6.0 * self.two_qubit_us + 2.0 * self.one_qubit_us,
            Gate::Ccz => 6.0 * self.two_qubit_us,
            Gate::Cswap => 8.0 * self.two_qubit_us + 2.0 * self.one_qubit_us,
            g if g.arity() == 1 => self.one_qubit_us,
            _ => self.two_qubit_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_ir::Gate;

    #[test]
    fn johannesburg_values_match_paper() {
        let d = GateDurations::johannesburg();
        assert_eq!(d.one_qubit_us, 0.07);
        assert_eq!(d.two_qubit_us, 0.559);
    }

    #[test]
    fn durations_by_gate_kind() {
        let d = GateDurations::default();
        assert_eq!(d.of(Gate::H), d.one_qubit_us);
        assert_eq!(d.of(Gate::Cx), d.two_qubit_us);
        assert_eq!(d.of(Gate::Swap), 3.0 * d.two_qubit_us);
        assert_eq!(d.of(Gate::Measure), d.measure_us);
        assert!(d.of(Gate::Ccx) > 6.0 * d.two_qubit_us);
    }
}
