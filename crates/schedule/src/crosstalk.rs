//! Crosstalk analysis and crosstalk-aware scheduling.
//!
//! Superconducting devices pay an error penalty when two-qubit gates run
//! *simultaneously on coupled edges* (paper §2.3: parallel gates impose
//! "additional crosstalk error"; §2.4 cites Murali et al.'s software
//! mitigation). This module provides both sides of the trade:
//!
//! * [`crosstalk_conflicts`] counts the simultaneous adjacent-edge pairs
//!   in an existing schedule, and
//! * [`schedule_crosstalk_aware`] produces a schedule with **zero** such
//!   pairs by delaying a conflicting two-qubit gate until the neighboring
//!   gate finishes — buying error rate with duration, the same trade
//!   Murali et al. navigate.

use crate::{GateDurations, Schedule, ScheduledOp};
use trios_ir::Circuit;
use trios_topology::Topology;

/// Two scheduled two-qubit gates conflict when their time intervals
/// overlap and some coupling edge connects one gate's qubits to the
/// other's (sharing a qubit is *not* crosstalk — those gates cannot
/// overlap at all).
fn edges_coupled(topology: &Topology, a: &[usize], b: &[usize]) -> bool {
    a.iter()
        .any(|&qa| b.iter().any(|&qb| topology.are_adjacent(qa, qb)))
}

fn is_two_qubit_op(op: &ScheduledOp) -> bool {
    op.instruction.gate().arity() == 2
}

/// Counts the pairs of simultaneous two-qubit gates on coupled edges in
/// `schedule`. Each conflicting pair is counted once.
///
/// The circuit must be routed (gates act on physical qubits of
/// `topology`).
pub fn crosstalk_conflicts(schedule: &Schedule, topology: &Topology) -> usize {
    let two_qubit: Vec<&ScheduledOp> = schedule
        .ops()
        .iter()
        .filter(|op| is_two_qubit_op(op))
        .collect();
    let mut conflicts = 0usize;
    for (i, a) in two_qubit.iter().enumerate() {
        for b in &two_qubit[i + 1..] {
            let overlap = a.start_us < b.end_us() - 1e-12 && b.start_us < a.end_us() - 1e-12;
            if !overlap {
                continue;
            }
            let qa: Vec<usize> = a.instruction.qubits().iter().map(|q| q.index()).collect();
            let qb: Vec<usize> = b.instruction.qubits().iter().map(|q| q.index()).collect();
            if qa.iter().any(|q| qb.contains(q)) {
                continue; // shared qubit: dependency, not crosstalk
            }
            if edges_coupled(topology, &qa, &qb) {
                conflicts += 1;
            }
        }
    }
    conflicts
}

/// ASAP scheduling with crosstalk avoidance: a two-qubit gate additionally
/// waits until no *running* two-qubit gate sits on a coupled edge.
///
/// The result is conflict-free by construction
/// ([`crosstalk_conflicts`] `== 0`) at the cost of a longer total
/// duration; single-qubit gates and measurements are never delayed.
pub fn schedule_crosstalk_aware(
    circuit: &Circuit,
    durations: &GateDurations,
    topology: &Topology,
) -> Schedule {
    let mut qubit_free = vec![0.0f64; circuit.num_qubits()];
    // Running two-qubit ops as (end_us, qubits).
    let mut placed_2q: Vec<(f64, f64, Vec<usize>)> = Vec::new();
    let mut ops = Vec::with_capacity(circuit.len());
    let mut total = 0.0f64;
    for instr in circuit.iter() {
        let qubits: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
        let mut start = qubits.iter().map(|&q| qubit_free[q]).fold(0.0f64, f64::max);
        let duration = durations.of(instr.gate());
        if instr.gate().arity() == 2 {
            // Push the start past every coupled two-qubit gate that would
            // still be running.
            loop {
                let conflict = placed_2q
                    .iter()
                    .filter(|(s, e, qs)| {
                        start < *e - 1e-12
                            && *s < start + duration - 1e-12
                            && !qs.iter().any(|q| qubits.contains(q))
                            && edges_coupled(topology, qs, &qubits)
                    })
                    .map(|(_, e, _)| *e)
                    .fold(None::<f64>, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))));
                match conflict {
                    Some(next_free) => start = next_free,
                    None => break,
                }
            }
            placed_2q.push((start, start + duration, qubits.clone()));
        }
        let end = start + duration;
        for &q in &qubits {
            qubit_free[q] = end;
        }
        total = total.max(end);
        ops.push(ScheduledOp {
            instruction: *instr,
            start_us: start,
            duration_us: duration,
        });
    }
    Schedule::from_parts(ops, total)
}

/// ALAP scheduling with the same crosstalk avoidance: gates are pushed as
/// late as dependencies allow, and a two-qubit gate is additionally pulled
/// *earlier* (toward the circuit start) rather than ever overlapping a
/// coupled two-qubit gate.
///
/// Implemented by the standard reversal identity `ALAP(C) =
/// mirror(ASAP(reverse(C)))`: the instruction list is reversed, scheduled
/// with [`schedule_crosstalk_aware`], and every interval is reflected
/// about the total duration. Reflection preserves both interval overlap
/// and qubit dependencies, so the result is conflict-free
/// ([`crosstalk_conflicts`] `== 0`) with the same total duration as the
/// forward crosstalk-aware schedule of the reversed circuit, and ops stay
/// in program order.
pub fn schedule_crosstalk_aware_alap(
    circuit: &Circuit,
    durations: &GateDurations,
    topology: &Topology,
) -> Schedule {
    let mut reversed = Circuit::new(circuit.num_qubits());
    for instr in circuit.iter().rev() {
        reversed.push(*instr);
    }
    let forward = schedule_crosstalk_aware(&reversed, durations, topology);
    let total = forward.total_duration_us();
    let ops: Vec<ScheduledOp> = forward
        .ops()
        .iter()
        .rev()
        .map(|op| ScheduledOp {
            instruction: op.instruction,
            start_us: total - op.end_us(),
            duration_us: op.duration_us,
        })
        .collect();
    Schedule::from_parts(ops, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule_alap, schedule_asap};
    use trios_ir::Circuit;
    use trios_topology::{grid, line};

    fn durations() -> GateDurations {
        GateDurations::johannesburg()
    }

    #[test]
    fn coupled_parallel_gates_are_detected() {
        // Line 0-1-2-3: CX(0,1) and CX(2,3) run in parallel under ASAP and
        // the edge (1,2) couples them.
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let topo = line(4);
        let asap = schedule_asap(&c, &durations());
        assert_eq!(crosstalk_conflicts(&asap, &topo), 1);
    }

    #[test]
    fn distant_parallel_gates_do_not_conflict() {
        // Line 0..6: CX(0,1) and CX(4,5) are separated by two idle qubits.
        let mut c = Circuit::new(6);
        c.cx(0, 1).cx(4, 5);
        let topo = line(6);
        let asap = schedule_asap(&c, &durations());
        assert_eq!(crosstalk_conflicts(&asap, &topo), 0);
    }

    #[test]
    fn sequential_gates_never_conflict() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 2).cx(2, 3);
        let topo = line(4);
        let asap = schedule_asap(&c, &durations());
        assert_eq!(crosstalk_conflicts(&asap, &topo), 0);
    }

    #[test]
    fn aware_schedule_is_conflict_free_and_longer() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let topo = line(4);
        let asap = schedule_asap(&c, &durations());
        let aware = schedule_crosstalk_aware(&c, &durations(), &topo);
        assert_eq!(crosstalk_conflicts(&aware, &topo), 0);
        assert!(aware.total_duration_us() > asap.total_duration_us());
        // Serialization doubles the two-gate duration.
        assert!((aware.total_duration_us() - 2.0 * 0.559).abs() < 1e-12);
    }

    #[test]
    fn aware_schedule_keeps_uncoupled_parallelism() {
        let mut c = Circuit::new(6);
        c.cx(0, 1).cx(4, 5);
        let topo = line(6);
        let aware = schedule_crosstalk_aware(&c, &durations(), &topo);
        let asap = schedule_asap(&c, &durations());
        assert!(
            (aware.total_duration_us() - asap.total_duration_us()).abs() < 1e-12,
            "uncoupled gates must still run in parallel"
        );
    }

    #[test]
    fn aware_schedule_respects_dependencies() {
        let mut c = Circuit::new(5);
        c.cx(0, 1).cx(2, 3).cx(1, 2).h(4);
        let topo = grid(5, 1);
        let aware = schedule_crosstalk_aware(&c, &durations(), &topo);
        let ops = aware.ops();
        // cx(1,2) depends on both earlier gates.
        assert!(ops[2].start_us >= ops[0].end_us() - 1e-12);
        assert!(ops[2].start_us >= ops[1].end_us() - 1e-12);
        // The 1q gate is never delayed.
        assert_eq!(ops[3].start_us, 0.0);
    }

    #[test]
    fn crosstalk_policy_serializes_neighbors_under_asap_and_alap() {
        // The constructed case: CX(0,1) and CX(2,3) on a 4-qubit line are
        // dependency-free, so both plain schedulers run them in parallel —
        // and the edge (1,2) couples them, which the crosstalk policy must
        // serialize in *both* scheduling directions.
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let topo = line(4);
        let d = durations();

        // Both plain schedules exhibit the conflict.
        assert_eq!(crosstalk_conflicts(&schedule_asap(&c, &d), &topo), 1);
        assert_eq!(crosstalk_conflicts(&schedule_alap(&c, &d), &topo), 1);

        // Both crosstalk-aware schedules serialize it: zero conflicts and
        // exactly the doubled two-gate duration.
        for schedule in [
            schedule_crosstalk_aware(&c, &d, &topo),
            schedule_crosstalk_aware_alap(&c, &d, &topo),
        ] {
            assert_eq!(crosstalk_conflicts(&schedule, &topo), 0);
            assert!((schedule.total_duration_us() - 2.0 * 0.559).abs() < 1e-12);
            // The two gates may not overlap in either direction.
            let (a, b) = (&schedule.ops()[0], &schedule.ops()[1]);
            assert!(
                a.end_us() <= b.start_us + 1e-12 || b.end_us() <= a.start_us + 1e-12,
                "gates still overlap: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn alap_aware_pushes_gates_late_and_respects_dependencies() {
        // One early H far before a dependent CX: the ALAP variant slides
        // the H to end exactly when its CX begins, while staying
        // conflict-free on the coupled pair.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(2, 3);
        let topo = line(4);
        let aware_alap = schedule_crosstalk_aware_alap(&c, &durations(), &topo);
        assert_eq!(crosstalk_conflicts(&aware_alap, &topo), 0);
        let ops = aware_alap.ops();
        // Ops come back in program order.
        assert_eq!(ops[0].instruction, *c.instructions().first().unwrap());
        // The H ends exactly when its dependent CX starts (ALAP: no slack).
        assert!((ops[0].end_us() - ops[1].start_us).abs() < 1e-12);
        // Dependencies hold for every op pair sharing a qubit.
        assert!(ops[1].start_us >= ops[0].end_us() - 1e-12);
        // Everything fits the declared makespan.
        for op in ops {
            assert!(op.start_us >= -1e-12);
            assert!(op.end_us() <= aware_alap.total_duration_us() + 1e-12);
        }
    }

    #[test]
    fn alap_aware_keeps_uncoupled_parallelism() {
        let mut c = Circuit::new(6);
        c.cx(0, 1).cx(4, 5);
        let topo = line(6);
        let aware = schedule_crosstalk_aware_alap(&c, &durations(), &topo);
        assert_eq!(crosstalk_conflicts(&aware, &topo), 0);
        assert!(
            (aware.total_duration_us() - 0.559).abs() < 1e-12,
            "uncoupled gates must still run in parallel"
        );
    }

    #[test]
    fn conflict_count_scales_with_packing() {
        // Three stacked rows of a 2×3 grid: the middle CX couples to both
        // others when all run simultaneously.
        let topo = grid(2, 3); // 0-1 / 2-3 / 4-5 with verticals
        let mut c = Circuit::new(6);
        c.cx(0, 1).cx(2, 3).cx(4, 5);
        let asap = schedule_asap(&c, &durations());
        assert_eq!(crosstalk_conflicts(&asap, &topo), 2);
        let aware = schedule_crosstalk_aware(&c, &durations(), &topo);
        assert_eq!(crosstalk_conflicts(&aware, &topo), 0);
        // Rows 0-1 and 4-5 are uncoupled and may still overlap.
        assert!((aware.total_duration_us() - 2.0 * 0.559).abs() < 1e-12);
    }
}
