//! ASAP (as-soon-as-possible) scheduling.

use crate::GateDurations;
use trios_ir::{Circuit, Instruction};

/// One scheduled instruction with its start time and duration (µs).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledOp {
    /// The instruction.
    pub instruction: Instruction,
    /// Start time in µs from circuit start.
    pub start_us: f64,
    /// Duration in µs.
    pub duration_us: f64,
}

impl ScheduledOp {
    /// End time in µs.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.duration_us
    }
}

/// The result of scheduling: per-op start times and the total duration Δ
/// that feeds the decoherence term of the success model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    ops: Vec<ScheduledOp>,
    total_duration_us: f64,
}

impl Schedule {
    /// Assembles a schedule from already-computed parts (used by the ALAP
    /// scheduler).
    pub(crate) fn from_parts(ops: Vec<ScheduledOp>, total_duration_us: f64) -> Self {
        Schedule {
            ops,
            total_duration_us,
        }
    }

    /// The scheduled operations, in circuit order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Total program duration Δ (µs): the paper's §2.6 coherence input.
    pub fn total_duration_us(&self) -> f64 {
        self.total_duration_us
    }
}

/// Schedules `circuit` as-soon-as-possible: each instruction starts when
/// the last instruction touching any of its qubits finishes. Gates on
/// disjoint qubits run in parallel (paper §2.3: "gates can often run in
/// parallel").
pub fn schedule_asap(circuit: &Circuit, durations: &GateDurations) -> Schedule {
    let mut qubit_free = vec![0.0f64; circuit.num_qubits()];
    let mut ops = Vec::with_capacity(circuit.len());
    let mut total = 0.0f64;
    for instr in circuit.iter() {
        let start = instr
            .qubits()
            .iter()
            .map(|q| qubit_free[q.index()])
            .fold(0.0, f64::max);
        let duration = durations.of(instr.gate());
        let end = start + duration;
        for q in instr.qubits() {
            qubit_free[q.index()] = end;
        }
        total = total.max(end);
        ops.push(ScheduledOp {
            instruction: *instr,
            start_us: start,
            duration_us: duration,
        });
    }
    Schedule {
        ops,
        total_duration_us: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: f64 = 0.07;
    const D2: f64 = 0.559;

    fn durations() -> GateDurations {
        GateDurations::johannesburg()
    }

    #[test]
    fn empty_circuit_has_zero_duration() {
        let s = schedule_asap(&Circuit::new(3), &durations());
        assert_eq!(s.total_duration_us(), 0.0);
        assert!(s.ops().is_empty());
    }

    #[test]
    fn serial_chain_sums_durations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let s = schedule_asap(&c, &durations());
        assert!((s.total_duration_us() - (D1 + D2 + D1)).abs() < 1e-12);
        assert_eq!(s.ops()[1].start_us, D1);
        assert!((s.ops()[2].start_us - (D1 + D2)).abs() < 1e-12);
    }

    #[test]
    fn disjoint_gates_run_in_parallel() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3);
        let s = schedule_asap(&c, &durations());
        assert_eq!(s.ops()[0].start_us, 0.0);
        assert_eq!(s.ops()[1].start_us, 0.0);
        assert!((s.total_duration_us() - D2).abs() < 1e-12);
    }

    #[test]
    fn gate_waits_for_latest_operand() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).cx(1, 2);
        let s = schedule_asap(&c, &durations());
        // cx(1,2) must wait for cx(0,1) (ends at D2), not just h(2) (D1).
        assert!((s.ops()[2].start_us - D2).abs() < 1e-12);
    }

    #[test]
    fn swap_counts_as_three_cx_durations() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let s = schedule_asap(&c, &durations());
        assert!((s.total_duration_us() - 3.0 * D2).abs() < 1e-12);
    }

    #[test]
    fn measurement_extends_duration() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        let s = schedule_asap(&c, &durations());
        assert!((s.total_duration_us() - (D1 + 3.5)).abs() < 1e-12);
    }
}
