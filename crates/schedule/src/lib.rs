//! # trios-schedule — ASAP/ALAP scheduling and duration models
//!
//! The last pass of both compilation pipelines (paper Fig. 2): assign each
//! instruction a start time, exploiting parallelism between gates on
//! disjoint qubits, and report the total program duration Δ. Δ drives the
//! decoherence term `exp(−Δ/T1 − Δ/T2)` of the paper's success-probability
//! model (§2.6) — fewer/shorter SWAP chains mean a shorter Δ and a better
//! chance the qubits survive the program.
//!
//! Beyond the paper's ASAP pass, [`schedule_alap`] provides
//! as-late-as-possible scheduling and [`idle_report`] quantifies per-qubit
//! idle exposure — the decoherence-relevant refinement that ALAP improves.
//!
//! # Examples
//!
//! ```
//! use trios_ir::Circuit;
//! use trios_schedule::{schedule_asap, GateDurations};
//!
//! let mut c = Circuit::new(4);
//! c.cx(0, 1).cx(2, 3); // disjoint: run in parallel
//! let s = schedule_asap(&c, &GateDurations::johannesburg());
//! assert!((s.total_duration_us() - 0.559).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alap;
mod asap;
mod crosstalk;
mod durations;

pub use alap::{alap_idle_us, asap_idle_us, idle_report, schedule_alap, IdleReport};
pub use asap::{schedule_asap, Schedule, ScheduledOp};
pub use crosstalk::{crosstalk_conflicts, schedule_crosstalk_aware, schedule_crosstalk_aware_alap};
pub use durations::GateDurations;
