//! # trios-passes — decomposition and optimization passes
//!
//! The gate-level transformations of the Orchestrated Trios compiler:
//!
//! * **Toffoli decompositions** — the 6-CNOT form (paper Fig. 3, needs a
//!   coupling triangle) and the 8-CNOT linear form (paper Fig. 4, needs only
//!   a path, with a free choice of target). The split between them, made
//!   *after* routing, is the paper's "mapping-aware decomposition" — and it
//!   is pluggable: every lowering flows through a [`DecompositionStrategy`]
//!   resolved from the [`DecomposerRegistry`] (`standard`, `six`, `eight`,
//!   `tdepth`, `relative-phase`, `qutrit`), mirroring the routing side's
//!   strategy registry.
//! * **Lowering** — SWAP → 3 CX, CZ/CP/controlled-roots → CX + 1q, and the
//!   final translation into the hardware set `{1q, cx, measure}`.
//! * **Optimization** — inverse-pair cancellation and single-qubit-run
//!   consolidation, mirroring the light optimization Qiskit applies in the
//!   paper's baseline.
//!
//! Every transformation here is verified against the statevector simulator
//! in its unit tests.
//!
//! # Examples
//!
//! ```
//! use trios_ir::{Circuit, Qubit};
//! use trios_passes::toffoli_8cnot_linear;
//!
//! // A Toffoli routed onto the line 4–7–9 with target 9:
//! let gates = toffoli_8cnot_linear(
//!     Qubit::new(4),
//!     Qubit::new(7),
//!     Qubit::new(9),
//!     Qubit::new(9),
//! );
//! let cx_count = gates
//!     .iter()
//!     .filter(|i| i.gate() == trios_ir::Gate::Cx)
//!     .count();
//! assert_eq!(cx_count, 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod commute;
mod decomposer;
mod lower;
mod optimize;
mod three_qubit;
mod toffoli;

pub(crate) use optimize::{operands_cancel, TapName};

pub use commute::{cancel_commuting_inverses, commutes, merge_commuting_rotations};
pub use decomposer::{
    DecomposerConstructor, DecomposerHandle, DecomposerRegistry, DecompositionPlan,
    DecompositionStrategy, EightCnotDecomposition, LoweringCost, QutritCostModel,
    RelativePhaseDecomposition, SixCnotDecomposition, StandardDecomposition, TDepthDecomposition,
    TrioPlacement,
};
pub use lower::{
    cp_to_cx, cxpow_to_cx, cz_to_cx, lower_swaps, lower_to_hardware_gates, swap_to_cnots,
};
pub use optimize::{
    cancel_adjacent_inverses, merge_single_qubit_runs, optimize, remove_trivial_gates,
    OptimizeOptions,
};
pub use three_qubit::{
    ccz_6cnot, ccz_8cnot_linear, cswap_via_ccx, decompose_one, decompose_three_qubit_gates,
};
pub use toffoli::{
    ccz_tdepth4, decompose_toffolis, toffoli_6cnot, toffoli_8cnot, toffoli_8cnot_linear,
    toffoli_margolus, toffoli_tdepth4,
};
