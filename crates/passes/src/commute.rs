//! Commutation-aware optimizations ("commutativity-aware gate
//! cancellation", paper §2.4), in the style of Nam et al.
//!
//! The pairwise commutation test classifies how each gate acts on each of
//! its wires:
//!
//! * **Z-type** — the gate is diagonal in the computational basis on that
//!   wire (a CX control, any phase gate, either CZ operand, …);
//! * **X-type** — diagonal in the X basis on that wire (a CX target, `x`,
//!   `sx`, `rx`, …);
//! * **Opaque** — neither (Hadamards, SWAPs, measurements, …).
//!
//! Two instructions commute when every wire they share is Z-type for both
//! or X-type for both: each gate then factors as a sum of projectors on the
//! shared wires in the same basis, and such sums commute. This check is
//! conservative (it never claims commutation falsely) and cheap.

use crate::TapName;
use std::f64::consts::PI;
use trios_ir::{Circuit, Gate, Instruction};

/// How a gate acts on one of its wires, for commutation analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireType {
    /// Diagonal in the computational basis on this wire.
    Z,
    /// Diagonal in the X basis on this wire.
    X,
    /// Neither — nothing commutes through on this wire.
    Opaque,
}

/// Classifies `gate`'s action on the wire at operand position `pos`.
fn wire_type(gate: Gate, pos: usize) -> WireType {
    match gate {
        // Pure phase gates: Z-diagonal everywhere they act.
        Gate::I
        | Gate::Z
        | Gate::S
        | Gate::Sdg
        | Gate::T
        | Gate::Tdg
        | Gate::Rz(_)
        | Gate::U1(_)
        | Gate::Cz
        | Gate::Cp(_)
        | Gate::Ccz => WireType::Z,
        // X-axis gates: X-diagonal.
        Gate::X | Gate::Sx | Gate::Sxdg | Gate::Rx(_) | Gate::Xpow(_) => WireType::X,
        // Controlled gates: Z on the control, the base gate's type on the
        // target.
        Gate::Cx | Gate::Ccx => {
            if pos + 1 == gate.arity() {
                WireType::X
            } else {
                WireType::Z
            }
        }
        Gate::Cxpow(_) => {
            if pos == 0 {
                WireType::Z
            } else {
                WireType::X
            }
        }
        Gate::Cswap => {
            if pos == 0 {
                WireType::Z
            } else {
                WireType::Opaque
            }
        }
        Gate::H
        | Gate::Y
        | Gate::Ry(_)
        | Gate::U2(..)
        | Gate::U3(..)
        | Gate::Swap
        | Gate::Measure => WireType::Opaque,
    }
}

/// Conservative pairwise commutation check: `true` only when the two
/// instructions provably commute.
///
/// # Examples
///
/// ```
/// use trios_ir::{Gate, Instruction, Qubit};
/// use trios_passes::commutes;
///
/// let q = Qubit::new;
/// let cx01 = Instruction::new(Gate::Cx, &[q(0), q(1)]);
/// let cx02 = Instruction::new(Gate::Cx, &[q(0), q(2)]);
/// let t0 = Instruction::new(Gate::T, &[q(0)]);
/// let h1 = Instruction::new(Gate::H, &[q(1)]);
/// assert!(commutes(&cx01, &cx02)); // shared control
/// assert!(commutes(&cx01, &t0)); // phase on the control
/// assert!(!commutes(&cx01, &h1)); // H on the target blocks
/// ```
pub fn commutes(a: &Instruction, b: &Instruction) -> bool {
    for (i, qa) in a.qubits().iter().enumerate() {
        for (j, qb) in b.qubits().iter().enumerate() {
            if qa != qb {
                continue;
            }
            let (ta, tb) = (wire_type(a.gate(), i), wire_type(b.gate(), j));
            let compatible = matches!(
                (ta, tb),
                (WireType::Z, WireType::Z) | (WireType::X, WireType::X)
            );
            if !compatible {
                return false;
            }
        }
    }
    true
}

/// How far back the commuting-window passes scan. Windows beyond this add
/// compile time without measurable gate-count benefit on the paper suite.
const SCAN_WINDOW: usize = 64;

/// Cancels inverse pairs that are separated by *commuting* gates — a
/// strict generalization of
/// [`cancel_adjacent_inverses`](crate::cancel_adjacent_inverses).
///
/// For each instruction the pass scans backward past provably-commuting
/// instructions; on finding its inverse (same operands up to the gate's
/// symmetries) both are removed. Runs to a fixpoint.
pub fn cancel_commuting_inverses(circuit: &Circuit) -> Circuit {
    let mut instrs: Vec<Option<Instruction>> = circuit.iter().copied().map(Some).collect();
    loop {
        let mut changed = false;
        for i in 0..instrs.len() {
            let Some(cur) = instrs[i] else { continue };
            if cur.gate().is_measurement() {
                continue;
            }
            let mut scanned = 0usize;
            for j in (0..i).rev() {
                let Some(prev) = instrs[j] else { continue };
                if crate::operands_cancel(&prev, &cur) {
                    instrs[i] = None;
                    instrs[j] = None;
                    changed = true;
                    break;
                }
                if !commutes(&prev, &cur) {
                    break;
                }
                scanned += 1;
                if scanned >= SCAN_WINDOW {
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Circuit::from_instructions(
        circuit.num_qubits(),
        instrs.into_iter().flatten().collect::<Vec<_>>(),
    )
    .expect("cancellation preserves validity")
    .tap_name(circuit.name())
}

/// The Z-rotation angle a gate applies, when it is a pure single-qubit
/// phase gate (up to global phase): `z → π`, `s → π/2`, `t → π/4`,
/// `rz(θ)/u1(θ) → θ`, and their inverses.
fn z_angle(gate: Gate) -> Option<f64> {
    match gate {
        Gate::Z => Some(PI),
        Gate::S => Some(PI / 2.0),
        Gate::Sdg => Some(-PI / 2.0),
        Gate::T => Some(PI / 4.0),
        Gate::Tdg => Some(-PI / 4.0),
        Gate::Rz(a) | Gate::U1(a) => Some(a),
        _ => None,
    }
}

/// Normalizes an angle to `(−π, π]`.
fn normalize_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * PI);
    if a <= -PI {
        a += 2.0 * PI;
    } else if a > PI {
        a -= 2.0 * PI;
    }
    a
}

/// Merges single-qubit Z-rotations (`z`, `s`, `t`, `rz`, `u1`, inverses)
/// separated by commuting gates into one `u1`, dropping rotations that sum
/// to the identity. Equality is up to global phase (`rz` vs `u1`).
///
/// This is the "rotation merging" piece of Nam et al.'s optimization: after
/// routing, the T/T† ladders of consecutive Toffoli decompositions often
/// meet across CX controls and annihilate.
pub fn merge_commuting_rotations(circuit: &Circuit) -> Circuit {
    let mut instrs: Vec<Option<Instruction>> = circuit.iter().copied().map(Some).collect();
    for i in 0..instrs.len() {
        let Some(cur) = instrs[i] else { continue };
        let Some(angle) = z_angle(cur.gate()) else {
            continue;
        };
        let qubit = cur.qubit(0);
        let mut scanned = 0usize;
        for j in (0..i).rev() {
            let Some(prev) = instrs[j] else { continue };
            if prev.qubits() == [qubit] {
                if let Some(prev_angle) = z_angle(prev.gate()) {
                    let merged = normalize_angle(prev_angle + angle);
                    instrs[i] = None;
                    instrs[j] = if merged.abs() < 1e-12 {
                        None
                    } else {
                        Some(Instruction::new(Gate::U1(merged), &[qubit]))
                    };
                    break;
                }
            }
            if !commutes(&prev, &cur) {
                break;
            }
            scanned += 1;
            if scanned >= SCAN_WINDOW {
                break;
            }
        }
    }
    Circuit::from_instructions(
        circuit.num_qubits(),
        instrs.into_iter().flatten().collect::<Vec<_>>(),
    )
    .expect("rotation merging preserves validity")
    .tap_name(circuit.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_ir::Qubit;
    use trios_sim::circuits_equivalent;

    const EPS: f64 = 1e-9;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn i(g: Gate, qs: &[usize]) -> Instruction {
        let qubits: Vec<Qubit> = qs.iter().map(|&x| q(x)).collect();
        Instruction::new(g, &qubits)
    }

    #[test]
    fn disjoint_instructions_commute() {
        assert!(commutes(&i(Gate::H, &[0]), &i(Gate::Cx, &[1, 2])));
    }

    #[test]
    fn shared_control_cxs_commute() {
        assert!(commutes(&i(Gate::Cx, &[0, 1]), &i(Gate::Cx, &[0, 2])));
    }

    #[test]
    fn shared_target_cxs_commute() {
        assert!(commutes(&i(Gate::Cx, &[0, 2]), &i(Gate::Cx, &[1, 2])));
    }

    #[test]
    fn crossed_cxs_do_not_commute() {
        assert!(!commutes(&i(Gate::Cx, &[0, 1]), &i(Gate::Cx, &[1, 2])));
        assert!(!commutes(&i(Gate::Cx, &[0, 1]), &i(Gate::Cx, &[2, 0])));
    }

    #[test]
    fn phase_commutes_with_control_x_with_target() {
        assert!(commutes(&i(Gate::T, &[0]), &i(Gate::Cx, &[0, 1])));
        assert!(commutes(&i(Gate::X, &[1]), &i(Gate::Cx, &[0, 1])));
        assert!(!commutes(&i(Gate::T, &[1]), &i(Gate::Cx, &[0, 1])));
        assert!(!commutes(&i(Gate::X, &[0]), &i(Gate::Cx, &[0, 1])));
    }

    #[test]
    fn diagonal_gates_always_commute() {
        assert!(commutes(&i(Gate::Cz, &[0, 1]), &i(Gate::Ccz, &[0, 1, 2])));
        assert!(commutes(
            &i(Gate::Rz(0.3), &[0]),
            &i(Gate::Cp(0.5), &[0, 1])
        ));
    }

    #[test]
    fn measurement_is_opaque() {
        assert!(!commutes(&i(Gate::Measure, &[0]), &i(Gate::T, &[0])));
        assert!(commutes(&i(Gate::Measure, &[0]), &i(Gate::T, &[1])));
    }

    #[test]
    fn toffoli_wire_types() {
        // Controls are Z-type, target is X-type.
        assert!(commutes(&i(Gate::Ccx, &[0, 1, 2]), &i(Gate::T, &[0])));
        assert!(commutes(&i(Gate::Ccx, &[0, 1, 2]), &i(Gate::X, &[2])));
        assert!(!commutes(&i(Gate::Ccx, &[0, 1, 2]), &i(Gate::X, &[1])));
    }

    #[test]
    fn commutation_claims_verified_by_simulation() {
        // Every pair the checker claims commutes must commute as matrices.
        let candidates = [
            i(Gate::Cx, &[0, 1]),
            i(Gate::Cx, &[0, 2]),
            i(Gate::Cx, &[1, 2]),
            i(Gate::Cx, &[2, 0]),
            i(Gate::T, &[0]),
            i(Gate::X, &[1]),
            i(Gate::H, &[2]),
            i(Gate::Cz, &[0, 1]),
            i(Gate::Ccx, &[0, 1, 2]),
            i(Gate::Ccz, &[0, 1, 2]),
            i(Gate::Sx, &[2]),
            i(Gate::Rz(0.37), &[1]),
            i(Gate::Swap, &[0, 1]),
        ];
        for a in &candidates {
            for b in &candidates {
                if !commutes(a, b) {
                    continue; // conservative "no" is always allowed
                }
                let mut ab = Circuit::new(3);
                ab.push(*a).push(*b);
                let mut ba = Circuit::new(3);
                ba.push(*b).push(*a);
                assert!(
                    circuits_equivalent(&ab, &ba, EPS).unwrap(),
                    "claimed commutation is false: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn cancels_cx_pair_across_commuting_gates() {
        // CX(0,1) · T(0) · X(1) · CX(0,1): the middle gates commute with
        // CX, so the pair cancels; adjacent-only cancellation misses it.
        let mut c = Circuit::new(2);
        c.cx(0, 1).t(0).x(1).cx(0, 1);
        let opt = cancel_commuting_inverses(&c);
        assert_eq!(opt.len(), 2);
        assert!(circuits_equivalent(&c, &opt, EPS).unwrap());
        assert_eq!(crate::cancel_adjacent_inverses(&c).len(), 4);
    }

    #[test]
    fn does_not_cancel_across_blockers() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(1).cx(0, 1);
        assert_eq!(cancel_commuting_inverses(&c).len(), 3);
    }

    #[test]
    fn fixpoint_unnests_pairs() {
        // Inner pair cancels first, exposing the outer pair.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(0, 2).t(0).cx(0, 2).cx(0, 1);
        let opt = cancel_commuting_inverses(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate(), Gate::T);
        assert!(circuits_equivalent(&c, &opt, EPS).unwrap());
    }

    #[test]
    fn merges_rotations_across_cx_controls() {
        // T · (CX ladder using 0 as control) · T† — the pair annihilates.
        let mut c = Circuit::new(3);
        c.t(0).cx(0, 1).cx(0, 2).tdg(0);
        let opt = merge_commuting_rotations(&c);
        assert_eq!(opt.len(), 2);
        assert!(circuits_equivalent(&c, &opt, EPS).unwrap());
    }

    #[test]
    fn merges_s_and_t_into_u1() {
        let mut c = Circuit::new(1);
        c.s(0).t(0);
        let opt = merge_commuting_rotations(&c);
        assert_eq!(opt.len(), 1);
        let g = opt.instructions()[0].gate();
        assert!(matches!(g, Gate::U1(a) if (a - 3.0 * PI / 4.0).abs() < 1e-12));
        assert!(circuits_equivalent(&c, &opt, EPS).unwrap());
    }

    #[test]
    fn rotation_merge_respects_blockers() {
        let mut c = Circuit::new(1);
        c.t(0).h(0).tdg(0);
        assert_eq!(merge_commuting_rotations(&c).len(), 3);
    }

    #[test]
    fn rotation_merge_wraps_angles() {
        let mut c = Circuit::new(1);
        c.rz(PI, 0).rz(PI, 0); // 2π ≡ identity (up to global phase)
        assert_eq!(merge_commuting_rotations(&c).len(), 0);
    }

    #[test]
    fn back_to_back_toffoli_decompositions_shrink() {
        // Two 6-CNOT Toffolis in a row. Pairwise passes cannot collapse
        // CCX·CCX to the identity (that needs algebraic rewriting), but the
        // commutation-aware passes must strictly beat adjacent-only
        // cancellation at the decomposition junction.
        use crate::{cancel_adjacent_inverses, toffoli_6cnot, SixCnotDecomposition};
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).ccx(0, 1, 2);
        let lowered = crate::decompose_three_qubit_gates(&c, &SixCnotDecomposition);
        assert_eq!(lowered.len(), 2 * toffoli_6cnot(q(0), q(1), q(2)).len());
        let adjacent = cancel_adjacent_inverses(&lowered);
        let opt = merge_commuting_rotations(&cancel_commuting_inverses(&lowered));
        let opt = cancel_commuting_inverses(&opt);
        assert!(
            opt.len() < adjacent.len() && adjacent.len() < lowered.len(),
            "{} < {} < {} expected",
            opt.len(),
            adjacent.len(),
            lowered.len()
        );
        assert!(circuits_equivalent(&lowered, &opt, EPS).unwrap());
    }

    #[test]
    fn optimize_full_preserves_semantics_on_lowered_benchmark() {
        // A routed-and-lowered program shaped like the paper's workloads:
        // consecutive Toffoli decompositions with interleaved CX traffic.
        use crate::{optimize, OptimizeOptions, SixCnotDecomposition};
        let mut c = Circuit::new(5);
        c.h(0)
            .ccx(0, 1, 2)
            .cx(2, 3)
            .ccx(1, 2, 3)
            .cx(3, 4)
            .ccx(2, 3, 4)
            .t(2)
            .ccx(0, 1, 2);
        let lowered = crate::decompose_three_qubit_gates(&c, &SixCnotDecomposition);
        let light = optimize(&lowered, OptimizeOptions::default());
        let full = optimize(&lowered, OptimizeOptions::full());
        assert!(full.len() <= light.len());
        assert!(circuits_equivalent(&lowered, &full, EPS).unwrap());
    }
}
