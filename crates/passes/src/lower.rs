//! Lowering passes: SWAP → 3 CX, controlled-phase/Z/roots → CX + 1q, and
//! the final translation into the hardware gate set.

use crate::DecompositionStrategy;
use std::f64::consts::{FRAC_PI_2, PI};
use trios_ir::{Circuit, Gate, Instruction, Qubit};

/// Expands a SWAP into its standard 3-CNOT implementation (paper §2.2:
/// "each of these SWAPs is usually decomposed as a series of 3 CNOT gates").
pub fn swap_to_cnots(a: Qubit, b: Qubit) -> [Instruction; 3] {
    [
        Instruction::new(Gate::Cx, &[a, b]),
        Instruction::new(Gate::Cx, &[b, a]),
        Instruction::new(Gate::Cx, &[a, b]),
    ]
}

/// Replaces every SWAP in `circuit` with 3 CNOTs.
pub fn lower_swaps(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
    for instr in circuit.iter() {
        if instr.gate() == Gate::Swap {
            for cx in swap_to_cnots(instr.qubit(0), instr.qubit(1)) {
                out.push(cx);
            }
        } else {
            out.push(*instr);
        }
    }
    out
}

/// Decomposes a controlled-`X^t` into 2 CNOTs and single-qubit gates
/// (standard ABC construction; the control picks up the `u1(πt/2)` phase
/// that accounts for `det(X^t) ≠ 1`).
pub fn cxpow_to_cx(t: f64, control: Qubit, target: Qubit) -> Vec<Instruction> {
    let i = |g: Gate, qs: &[Qubit]| Instruction::new(g, qs);
    let theta = PI * t;
    vec![
        i(Gate::U1(theta / 2.0), &[control]),
        i(Gate::Rz(FRAC_PI_2), &[target]),
        i(Gate::Cx, &[control, target]),
        i(Gate::Ry(-theta / 2.0), &[target]),
        i(Gate::Cx, &[control, target]),
        i(Gate::Ry(theta / 2.0), &[target]),
        i(Gate::Rz(-FRAC_PI_2), &[target]),
    ]
}

/// Decomposes a controlled-phase `cp(λ)` into 2 CNOTs and three `u1`s.
pub fn cp_to_cx(lambda: f64, a: Qubit, b: Qubit) -> Vec<Instruction> {
    let i = |g: Gate, qs: &[Qubit]| Instruction::new(g, qs);
    vec![
        i(Gate::U1(lambda / 2.0), &[a]),
        i(Gate::Cx, &[a, b]),
        i(Gate::U1(-lambda / 2.0), &[b]),
        i(Gate::Cx, &[a, b]),
        i(Gate::U1(lambda / 2.0), &[b]),
    ]
}

/// Decomposes a CZ into `H(t) · CX · H(t)`.
pub fn cz_to_cx(a: Qubit, b: Qubit) -> [Instruction; 3] {
    [
        Instruction::new(Gate::H, &[b]),
        Instruction::new(Gate::Cx, &[a, b]),
        Instruction::new(Gate::H, &[b]),
    ]
}

/// Translates a circuit into the hardware gate set: single-qubit gates, CX,
/// and measurement (paper §1: IBM's `{u1, u2, u3, cx}` plus named 1q gates,
/// which [`merge_single_qubit_runs`] can consolidate into `u3`s).
///
/// Any remaining Toffoli is expanded with `strategy` — pipelines normally
/// eliminate Toffolis earlier (baseline before routing, Trios during), so
/// this is a safety net that keeps the pass total.
///
/// [`merge_single_qubit_runs`]: crate::merge_single_qubit_runs
pub fn lower_to_hardware_gates(circuit: &Circuit, strategy: &dyn DecompositionStrategy) -> Circuit {
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
    for instr in circuit.iter() {
        match instr.gate() {
            Gate::Swap => {
                for x in swap_to_cnots(instr.qubit(0), instr.qubit(1)) {
                    out.push(x);
                }
            }
            Gate::Cz => {
                for x in cz_to_cx(instr.qubit(0), instr.qubit(1)) {
                    out.push(x);
                }
            }
            Gate::Cp(l) => {
                for x in cp_to_cx(l, instr.qubit(0), instr.qubit(1)) {
                    out.push(x);
                }
            }
            Gate::Cxpow(t) => {
                for x in cxpow_to_cx(t, instr.qubit(0), instr.qubit(1)) {
                    out.push(x);
                }
            }
            Gate::Ccx | Gate::Ccz | Gate::Cswap => {
                for x in crate::decompose_one(instr, strategy) {
                    out.push(x);
                }
            }
            _ => {
                out.push(*instr);
            }
        }
    }
    debug_assert!(out.is_hardware_lowered());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::circuits_equivalent;

    const EPS: f64 = 1e-9;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    #[test]
    fn swap_lowering_is_equivalent() {
        let mut c = Circuit::new(3);
        c.h(0).t(2).swap(0, 2).cx(0, 1);
        let lowered = lower_swaps(&c);
        assert_eq!(lowered.counts().swap, 0);
        assert_eq!(lowered.counts().cx, 3 + 1);
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
    }

    #[test]
    fn cxpow_lowering_is_equivalent() {
        for t in [0.5, 0.25, -0.5, 0.3, 1.0] {
            let mut c = Circuit::new(2);
            c.h(0).h(1).cxpow(t, 0, 1);
            let lowered = Circuit::from_instructions(
                2,
                c.instructions()[..2]
                    .iter()
                    .copied()
                    .chain(cxpow_to_cx(t, q(0), q(1))),
            )
            .unwrap();
            assert!(
                circuits_equivalent(&c, &lowered, EPS).unwrap(),
                "cxpow({t})"
            );
        }
    }

    #[test]
    fn cp_lowering_is_equivalent() {
        for l in [PI / 2.0, PI / 4.0, -1.3, 2.7] {
            let mut c = Circuit::new(2);
            c.h(0).h(1).cp(l, 0, 1);
            let mut lowered = Circuit::new(2);
            lowered.h(0).h(1);
            for x in cp_to_cx(l, q(0), q(1)) {
                lowered.push(x);
            }
            assert!(circuits_equivalent(&c, &lowered, EPS).unwrap(), "cp({l})");
        }
    }

    #[test]
    fn cz_lowering_is_equivalent() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cz(0, 1);
        let mut lowered = Circuit::new(2);
        lowered.h(0).h(1);
        for x in cz_to_cx(q(0), q(1)) {
            lowered.push(x);
        }
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
    }

    #[test]
    fn hardware_lowering_handles_everything() {
        let mut c = Circuit::new(4);
        c.h(0)
            .swap(0, 1)
            .cz(1, 2)
            .cp(0.8, 2, 3)
            .cxpow(0.5, 0, 3)
            .ccx(0, 1, 2)
            .measure(2);
        let lowered = lower_to_hardware_gates(&c, &crate::SixCnotDecomposition);
        assert!(lowered.is_hardware_lowered());
    }

    #[test]
    fn hardware_lowering_preserves_semantics() {
        let mut c = Circuit::new(4);
        c.h(0)
            .swap(0, 1)
            .cz(1, 2)
            .cp(0.8, 2, 3)
            .cxpow(0.5, 0, 3)
            .ccx(0, 1, 2);
        for name in ["six", "eight", "tdepth"] {
            let strategy = crate::DecomposerRegistry::standard().get(name).unwrap();
            let lowered = lower_to_hardware_gates(&c, &*strategy);
            assert!(circuits_equivalent(&c, &lowered, EPS).unwrap(), "{name}");
        }
    }
}
