//! The pluggable decomposition seam: [`DecompositionStrategy`], the
//! built-in Toffoli/CCZ lowerings, and the [`DecomposerRegistry`] that
//! names them — the symmetric counterpart to routing's
//! `RoutingStrategy`/`StrategyRegistry`.
//!
//! The paper's thesis is "route the trio first, *then* decompose"; this
//! module makes the second half pluggable so the router × decomposer grid
//! can be swept. Each strategy maps one three-qubit instruction plus its
//! routed placement to a gate sequence:
//!
//! | name             | lowering                                                  |
//! |------------------|-----------------------------------------------------------|
//! | `standard`       | connectivity-aware 6/8-CNOT split (the paper's Trios, §4) |
//! | `six`            | always the 6-CNOT form (paper Fig. 3)                     |
//! | `eight`          | always the 8-CNOT linear form (paper Fig. 4)              |
//! | `tdepth`         | T-depth-4 CCZ phase network (6 CNOTs, 7 T gates)          |
//! | `relative-phase` | Margolus 3-CNOT CCX on provably-safe compute/uncompute    |
//! |                  | pairs, `standard` everywhere else                         |
//! | `qutrit`         | cost-model-only qutrit lowering (Gokhale et al.); not     |
//! |                  | executable — contributes estimate/sweep numbers only      |

use crate::{
    ccz_6cnot, ccz_8cnot_linear, ccz_tdepth4, cswap_via_ccx, toffoli_6cnot, toffoli_8cnot_linear,
    toffoli_margolus, toffoli_tdepth4,
};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use trios_ir::{Circuit, Gate, Instruction, Qubit};

/// Where the router put a gathered trio when a lowering is requested.
///
/// `Line`'s `middle` is an **operand index** (0, 1, or 2) into the
/// instruction being lowered, not a physical qubit: strategies are
/// expressed over logical operands and stay ignorant of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrioPlacement {
    /// No placement information — the pre-route decomposition path
    /// (paper Fig. 2a), or a caller that simply does not know.
    #[default]
    Unknown,
    /// All three pairs are coupled; the 6-CNOT form runs natively.
    Triangle,
    /// The trio sits on a path with operand `middle` in the middle; the
    /// 8-CNOT form runs natively with that operand in the middle role.
    Line {
        /// Operand index (0..=2) of the qubit in the middle of the path.
        middle: usize,
    },
}

/// Per-circuit decomposition decisions, computed once by
/// [`DecompositionStrategy::plan`] before lowering starts and consumed
/// (mutably) by each [`DecompositionStrategy::lower`] call.
///
/// Today this carries the `relative-phase` strategy's Margolus safety
/// analysis: one decision per `ccx` instruction, keyed by its ordered
/// operand triple and consumed in program order (routing and the
/// pre-route pass both lower three-qubit gates in program order). The
/// `synthetic` note marks the inner `ccx` of a `cswap` expansion — that
/// gate was not in the analyzed circuit, so it must never consume (or be
/// granted) a Margolus decision.
#[derive(Debug, Clone, Default)]
pub struct DecompositionPlan {
    /// Margolus-approved decisions per ordered `ccx` operand triple, in
    /// program order.
    margolus: HashMap<[usize; 3], VecDeque<bool>>,
    /// Operand triple of a pending synthetic inner `ccx` (from a `cswap`
    /// expansion); it is the next `ccx` to reach `lower`.
    synthetic: Option<[usize; 3]>,
}

impl DecompositionPlan {
    /// An empty plan (every lowering falls back to its default form).
    pub fn new() -> Self {
        DecompositionPlan::default()
    }

    /// Number of Margolus-approved `ccx` instructions in the plan.
    pub fn margolus_count(&self) -> usize {
        self.margolus
            .values()
            .map(|q| q.iter().filter(|&&m| m).count())
            .sum()
    }

    fn mark_synthetic(&mut self, key: [usize; 3]) {
        self.synthetic = Some(key);
    }

    /// Pops the next decision for a `ccx` over `key`. Synthetic inner
    /// gates (and gates the analysis never saw) get `false`.
    fn take_margolus(&mut self, key: [usize; 3]) -> bool {
        if self.synthetic == Some(key) {
            self.synthetic = None;
            return false;
        }
        self.margolus
            .get_mut(&key)
            .and_then(|q| q.pop_front())
            .unwrap_or(false)
    }
}

/// Abstract per-trio gate cost of a lowering, for the estimate/sweep cost
/// models (notably the non-executable `qutrit` strategy, whose entire
/// contribution is this number).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoweringCost {
    /// Entangling (two-qubit-equivalent) gates per lowered Toffoli.
    pub two_qubit: f64,
    /// Single-qubit gates per lowered Toffoli.
    pub one_qubit: f64,
}

/// One Toffoli/CCZ/CSWAP lowering policy: maps a three-qubit instruction
/// plus its routed placement to an equivalent gate sequence over the same
/// logical operands.
///
/// Strategies are `Send + Sync` so the batch compiler's worker threads
/// can share them; per-circuit state lives in the [`DecompositionPlan`]
/// the caller threads through, never in the strategy itself.
pub trait DecompositionStrategy: Send + Sync {
    /// The stable registry name (what `--decomposer` accepts).
    fn name(&self) -> &str;

    /// One-line human description for listings.
    fn description(&self) -> &str {
        ""
    }

    /// Whether this strategy emits executable gates. Cost-model-only
    /// strategies (`qutrit`) return `false`; compiling with them is
    /// rejected up-front, while estimates and sweeps use
    /// [`DecompositionStrategy::trio_cost`] instead.
    fn executable(&self) -> bool {
        true
    }

    /// Analyzes `circuit` (the *logical* circuit, before routing) and
    /// returns the decisions [`DecompositionStrategy::lower`] will
    /// consume. The default is an empty plan.
    fn plan(&self, circuit: &Circuit) -> DecompositionPlan {
        let _ = circuit;
        DecompositionPlan::new()
    }

    /// Lowers one three-qubit instruction for `placement`.
    ///
    /// The returned sequence is over the instruction's logical operands;
    /// it may contain a `ccx` (the `cswap` expansions do), which the
    /// caller lowers recursively (pre-route) or re-gathers (the router).
    ///
    /// # Panics
    ///
    /// Implementations may panic when handed a non-three-qubit gate.
    fn lower(
        &self,
        instr: &Instruction,
        placement: TrioPlacement,
        plan: &mut DecompositionPlan,
    ) -> Vec<Instruction>;

    /// Abstract per-Toffoli gate cost, for estimate/sweep cost models.
    /// The default is the 6-CNOT form's 6 two-qubit + 9 one-qubit gates.
    fn trio_cost(&self) -> LoweringCost {
        LoweringCost {
            two_qubit: 6.0,
            one_qubit: 9.0,
        }
    }
}

/// Operand index of the middle qubit for an 8-CNOT lowering: the routed
/// middle when the placement is a line, otherwise the canonical choice —
/// the second operand, matching the pre-route `toffoli_8cnot` role
/// assignment.
fn middle_operand(placement: TrioPlacement) -> usize {
    match placement {
        TrioPlacement::Line { middle } => middle,
        _ => 1,
    }
}

/// The 8-CNOT Toffoli with the placement-appropriate middle operand.
fn lower_ccx_eight(instr: &Instruction, placement: TrioPlacement) -> Vec<Instruction> {
    let middle = middle_operand(placement);
    let ends: Vec<Qubit> = (0..3)
        .filter(|&i| i != middle)
        .map(|i| instr.qubit(i))
        .collect();
    toffoli_8cnot_linear(ends[0], instr.qubit(middle), ends[1], instr.qubit(2))
}

/// The 8-CNOT CCZ with the placement-appropriate middle operand.
fn lower_ccz_eight(instr: &Instruction, placement: TrioPlacement) -> Vec<Instruction> {
    let middle = middle_operand(placement);
    let ends: Vec<Qubit> = (0..3)
        .filter(|&i| i != middle)
        .map(|i| instr.qubit(i))
        .collect();
    ccz_8cnot_linear(ends[0], instr.qubit(middle), ends[1])
}

/// The connectivity-aware lowering shared by `standard` and
/// `relative-phase`'s fallback: 6-CNOT on a triangle (or pre-route, where
/// connectivity awareness does not exist yet — precisely the paper's
/// point), 8-CNOT with the routed middle on a line.
fn lower_standard(instr: &Instruction, placement: TrioPlacement) -> Vec<Instruction> {
    let (q0, q1, q2) = (instr.qubit(0), instr.qubit(1), instr.qubit(2));
    match instr.gate() {
        Gate::Ccx => match placement {
            TrioPlacement::Line { .. } => lower_ccx_eight(instr, placement),
            _ => toffoli_6cnot(q0, q1, q2),
        },
        Gate::Ccz => match placement {
            TrioPlacement::Line { .. } => lower_ccz_eight(instr, placement),
            _ => ccz_6cnot(q0, q1, q2),
        },
        Gate::Cswap => cswap_via_ccx(q0, q1, q2),
        g => unreachable!("lowering a non-three-qubit gate {g:?}"),
    }
}

fn expect_three_qubit(instr: &Instruction) {
    assert!(
        instr.gate().is_three_qubit(),
        "decomposition strategies expect a three-qubit gate, got {:?}",
        instr.gate()
    );
}

/// `standard`: the paper's mapping-aware split — 6-CNOT on triangles,
/// 8-CNOT (with the routed middle) on lines, 6-CNOT before routing.
/// Byte-identical to the compiler's historical default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardDecomposition;

impl DecompositionStrategy for StandardDecomposition {
    fn name(&self) -> &str {
        "standard"
    }

    fn description(&self) -> &str {
        "connectivity-aware 6/8-CNOT split after routing (the paper's Trios, §4)"
    }

    fn lower(
        &self,
        instr: &Instruction,
        placement: TrioPlacement,
        _plan: &mut DecompositionPlan,
    ) -> Vec<Instruction> {
        expect_three_qubit(instr);
        lower_standard(instr, placement)
    }
}

/// `six`: always the 6-CNOT form (paper Fig. 3) — on triangle-free
/// placements the router pays extra SWAPs for the third CNOT pair, which
/// is exactly the Fig. 6/7 ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SixCnotDecomposition;

impl DecompositionStrategy for SixCnotDecomposition {
    fn name(&self) -> &str {
        "six"
    }

    fn description(&self) -> &str {
        "always the 6-CNOT Toffoli (paper Fig. 3; forces SWAPs off-triangle)"
    }

    fn lower(
        &self,
        instr: &Instruction,
        _placement: TrioPlacement,
        _plan: &mut DecompositionPlan,
    ) -> Vec<Instruction> {
        expect_three_qubit(instr);
        let (q0, q1, q2) = (instr.qubit(0), instr.qubit(1), instr.qubit(2));
        match instr.gate() {
            Gate::Ccx => toffoli_6cnot(q0, q1, q2),
            Gate::Ccz => ccz_6cnot(q0, q1, q2),
            Gate::Cswap => cswap_via_ccx(q0, q1, q2),
            g => unreachable!("lowering a non-three-qubit gate {g:?}"),
        }
    }
}

/// `eight`: always the 8-CNOT linear form (paper Fig. 4), with the routed
/// middle on lines and the canonical second-operand middle otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EightCnotDecomposition;

impl DecompositionStrategy for EightCnotDecomposition {
    fn name(&self) -> &str {
        "eight"
    }

    fn description(&self) -> &str {
        "always the 8-CNOT linear Toffoli (paper Fig. 4; runs natively on a path)"
    }

    fn lower(
        &self,
        instr: &Instruction,
        placement: TrioPlacement,
        _plan: &mut DecompositionPlan,
    ) -> Vec<Instruction> {
        expect_three_qubit(instr);
        match instr.gate() {
            Gate::Ccx => lower_ccx_eight(instr, placement),
            Gate::Ccz => lower_ccz_eight(instr, placement),
            Gate::Cswap => cswap_via_ccx(instr.qubit(0), instr.qubit(1), instr.qubit(2)),
            g => unreachable!("lowering a non-three-qubit gate {g:?}"),
        }
    }
}

/// `tdepth`: the T-depth-4 CCZ phase network (6 CNOTs, 7 T gates, all
/// three qubit pairs) — fewer sequential T layers than the Fig. 3 form,
/// the knob that matters on hardware whose magic-state factories
/// serialize T gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TDepthDecomposition;

impl DecompositionStrategy for TDepthDecomposition {
    fn name(&self) -> &str {
        "tdepth"
    }

    fn description(&self) -> &str {
        "T-depth-4 phase-network Toffoli (6 CNOTs, 7 T gates over all three pairs)"
    }

    fn lower(
        &self,
        instr: &Instruction,
        _placement: TrioPlacement,
        _plan: &mut DecompositionPlan,
    ) -> Vec<Instruction> {
        expect_three_qubit(instr);
        let (q0, q1, q2) = (instr.qubit(0), instr.qubit(1), instr.qubit(2));
        match instr.gate() {
            Gate::Ccx => toffoli_tdepth4(q0, q1, q2),
            Gate::Ccz => ccz_tdepth4(q0, q1, q2),
            Gate::Cswap => cswap_via_ccx(q0, q1, q2),
            g => unreachable!("lowering a non-three-qubit gate {g:?}"),
        }
    }
}

/// `relative-phase`: the Margolus 3-CNOT CCX wherever a conservative
/// compute/uncompute analysis proves the relative phase unobservable,
/// `standard` everywhere else.
///
/// The Margolus form equals CCX times a diagonal `−1` on one basis state
/// (`|101⟩` in operand order), so a *pair* of Margolus lowerings with
/// identical ordered operands cancels the phase exactly:
/// `M·G·M = CCX·D·G·D·CCX = CCX·G·CCX` whenever `G` is diagonal on the
/// trio wires (`D` commutes with `CCX` and squares to identity). The
/// [`DecompositionStrategy::plan`] pass pairs each `ccx` with the next
/// `ccx` over the same ordered operands when every intervening gate
/// touching the trio is computational-basis-diagonal on it; both members
/// of the pair lower to the 3-CNOT form, everything else falls back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelativePhaseDecomposition;

/// `true` when `instr`'s action is diagonal in the computational basis on
/// every qubit of `trio` it touches (phases commute through it). Gates
/// not touching the trio are irrelevant; callers pre-filter.
fn diagonal_on_trio(instr: &Instruction, trio: &[usize; 3]) -> bool {
    let in_trio = |q: Qubit| trio.contains(&q.index());
    match instr.gate() {
        // Diagonal single-qubit gates.
        Gate::I
        | Gate::Z
        | Gate::S
        | Gate::Sdg
        | Gate::T
        | Gate::Tdg
        | Gate::Rz(_)
        | Gate::U1(_) => true,
        // Diagonal multi-qubit gates.
        Gate::Cz | Gate::Cp(_) | Gate::Ccz => true,
        // Controlled-X forms are diagonal on their *controls* only.
        Gate::Cx | Gate::Cxpow(_) => !in_trio(instr.qubit(1)),
        Gate::Ccx => !in_trio(instr.qubit(2)),
        Gate::Cswap => !in_trio(instr.qubit(1)) && !in_trio(instr.qubit(2)),
        // Everything else (Hadamards, X/Y rotations, SWAPs, measurement —
        // conservatively) moves population between basis states.
        _ => false,
    }
}

impl DecompositionStrategy for RelativePhaseDecomposition {
    fn name(&self) -> &str {
        "relative-phase"
    }

    fn description(&self) -> &str {
        "Margolus 3-CNOT CCX on provably-safe compute/uncompute pairs, standard elsewhere"
    }

    fn plan(&self, circuit: &Circuit) -> DecompositionPlan {
        let instrs: Vec<&Instruction> = circuit.iter().collect();
        let mut margolus = vec![false; instrs.len()];
        let mut paired = vec![false; instrs.len()];
        for i in 0..instrs.len() {
            if instrs[i].gate() != Gate::Ccx || paired[i] {
                continue;
            }
            let trio = [
                instrs[i].qubit(0).index(),
                instrs[i].qubit(1).index(),
                instrs[i].qubit(2).index(),
            ];
            for j in (i + 1)..instrs.len() {
                let candidate = instrs[j];
                if candidate.gate() == Gate::Ccx
                    && !paired[j]
                    && candidate.qubit(0).index() == trio[0]
                    && candidate.qubit(1).index() == trio[1]
                    && candidate.qubit(2).index() == trio[2]
                {
                    // Compute/uncompute pair found with only diagonal
                    // traffic in between: both lower to Margolus.
                    paired[i] = true;
                    paired[j] = true;
                    margolus[i] = true;
                    margolus[j] = true;
                    break;
                }
                let touches = candidate.qubits().iter().any(|q| trio.contains(&q.index()));
                if touches && !diagonal_on_trio(candidate, &trio) {
                    break; // phase would be observable — leave i unpaired
                }
            }
        }
        let mut plan = DecompositionPlan::new();
        for (index, instr) in instrs.iter().enumerate() {
            if instr.gate() == Gate::Ccx {
                let key = [
                    instr.qubit(0).index(),
                    instr.qubit(1).index(),
                    instr.qubit(2).index(),
                ];
                plan.margolus
                    .entry(key)
                    .or_default()
                    .push_back(margolus[index]);
            }
        }
        plan
    }

    fn lower(
        &self,
        instr: &Instruction,
        placement: TrioPlacement,
        plan: &mut DecompositionPlan,
    ) -> Vec<Instruction> {
        expect_three_qubit(instr);
        let (q0, q1, q2) = (instr.qubit(0), instr.qubit(1), instr.qubit(2));
        match instr.gate() {
            Gate::Ccx => {
                let key = [q0.index(), q1.index(), q2.index()];
                if plan.take_margolus(key) {
                    toffoli_margolus(q0, q1, q2)
                } else {
                    lower_standard(instr, placement)
                }
            }
            Gate::Cswap => {
                // The expansion's inner ccx was not in the analyzed
                // circuit; note it so it can never consume a decision.
                plan.mark_synthetic([q0.index(), q1.index(), q2.index()]);
                cswap_via_ccx(q0, q1, q2)
            }
            _ => lower_standard(instr, placement),
        }
    }

    fn trio_cost(&self) -> LoweringCost {
        // Between the 3-CNOT Margolus and the 6-CNOT fallback; the
        // executable paths report exact counts, this is only the abstract
        // estimate-model number.
        LoweringCost {
            two_qubit: 4.5,
            one_qubit: 7.0,
        }
    }
}

/// `qutrit`: the qutrit-assisted Toffoli of Gokhale et al. (storing the
/// intermediate in a third level of one control), modeled as a **cost
/// alternative only** — roughly three two-qutrit gates and no T gates per
/// Toffoli. Not executable on this two-level IR: compiling with it is
/// rejected, while estimates and sweeps apply
/// [`DecompositionStrategy::trio_cost`] to the `standard`-compiled
/// routing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QutritCostModel;

impl DecompositionStrategy for QutritCostModel {
    fn name(&self) -> &str {
        "qutrit"
    }

    fn description(&self) -> &str {
        "cost-model-only qutrit Toffoli (Gokhale et al.): ~3 two-qutrit gates, no T"
    }

    fn executable(&self) -> bool {
        false
    }

    fn lower(
        &self,
        instr: &Instruction,
        placement: TrioPlacement,
        _plan: &mut DecompositionPlan,
    ) -> Vec<Instruction> {
        // Defensive fallback: pipelines reject non-executable strategies
        // before lowering, but a direct caller still gets correct gates.
        expect_three_qubit(instr);
        lower_standard(instr, placement)
    }

    fn trio_cost(&self) -> LoweringCost {
        LoweringCost {
            two_qubit: 3.0,
            one_qubit: 0.0,
        }
    }
}

/// Constructor stored per registry entry.
pub type DecomposerConstructor = Arc<dyn Fn() -> Box<dyn DecompositionStrategy> + Send + Sync>;

/// An ordered name → constructor map of decomposition strategies,
/// mirroring routing's `StrategyRegistry`.
///
/// [`DecomposerRegistry::standard`] registers the built-ins under their
/// stable names; [`DecomposerRegistry::register`] adds (or replaces)
/// entries, so downstream crates can plug in custom lowerings and still
/// select them by name through the same CLI/server/core seam.
#[derive(Clone, Default)]
pub struct DecomposerRegistry {
    entries: Vec<(String, DecomposerConstructor)>,
}

impl DecomposerRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        DecomposerRegistry::default()
    }

    /// The registry of built-in strategies: `standard`, `six`, `eight`,
    /// `tdepth`, `relative-phase`, `qutrit`, in that listing order.
    pub fn standard() -> Self {
        let mut registry = DecomposerRegistry::empty();
        registry.register("standard", || Box::new(StandardDecomposition));
        registry.register("six", || Box::new(SixCnotDecomposition));
        registry.register("eight", || Box::new(EightCnotDecomposition));
        registry.register("tdepth", || Box::new(TDepthDecomposition));
        registry.register("relative-phase", || Box::new(RelativePhaseDecomposition));
        registry.register("qutrit", || Box::new(QutritCostModel));
        registry
    }

    /// Registers `constructor` under `name`, replacing any existing entry
    /// with that name (listing order is preserved on replacement).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        constructor: impl Fn() -> Box<dyn DecompositionStrategy> + Send + Sync + 'static,
    ) -> &mut Self {
        let name = name.into();
        let constructor: DecomposerConstructor = Arc::new(constructor);
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some(entry) => entry.1 = constructor,
            None => self.entries.push((name, constructor)),
        }
        self
    }

    /// Builds the strategy registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Box<dyn DecompositionStrategy>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ctor)| ctor())
    }

    /// `true` when a strategy is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for DecomposerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecomposerRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

/// How a caller names a decomposition strategy to the router: by registry
/// name (resolved in [`DecomposerRegistry::standard`] at engine
/// construction) or as an already-built strategy (how the core pipeline
/// injects strategies resolved in a caller-supplied registry).
#[derive(Clone)]
pub enum DecomposerHandle {
    /// Resolve this name in the standard registry.
    Named(String),
    /// Use this strategy directly.
    Custom(Arc<dyn DecompositionStrategy>),
}

impl DecomposerHandle {
    /// A handle naming `name` in the standard registry.
    pub fn named(name: impl Into<String>) -> Self {
        DecomposerHandle::Named(name.into())
    }

    /// The strategy name this handle refers to.
    pub fn name(&self) -> &str {
        match self {
            DecomposerHandle::Named(name) => name,
            DecomposerHandle::Custom(strategy) => strategy.name(),
        }
    }

    /// Resolves to a concrete strategy (named handles look up the
    /// standard registry).
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn resolve(&self) -> Result<Arc<dyn DecompositionStrategy>, String> {
        match self {
            DecomposerHandle::Named(name) => DecomposerRegistry::standard()
                .get(name)
                .map(Arc::from)
                .ok_or_else(|| name.clone()),
            DecomposerHandle::Custom(strategy) => Ok(Arc::clone(strategy)),
        }
    }
}

impl Default for DecomposerHandle {
    fn default() -> Self {
        DecomposerHandle::Named("standard".into())
    }
}

impl PartialEq for DecomposerHandle {
    fn eq(&self, other: &Self) -> bool {
        // Handles are configuration: two handles naming the same strategy
        // configure the router identically.
        self.name() == other.name()
    }
}

impl fmt::Debug for DecomposerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DecomposerHandle({:?})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::circuits_equivalent;

    const EPS: f64 = 1e-9;

    fn lower_flat(strategy: &dyn DecompositionStrategy, circuit: &Circuit) -> Circuit {
        crate::decompose_three_qubit_gates(circuit, strategy)
    }

    fn three_gate_program() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).ccx(0, 1, 2).ccz(1, 2, 3).cswap(0, 2, 3).t(1);
        c
    }

    #[test]
    fn standard_registry_lists_the_six_builtins() {
        let registry = DecomposerRegistry::standard();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            [
                "standard",
                "six",
                "eight",
                "tdepth",
                "relative-phase",
                "qutrit"
            ]
        );
        assert_eq!(registry.len(), 6);
        assert!(!registry.is_empty());
        assert!(registry.contains("tdepth"));
        assert!(!registry.contains("margolus"));
        for name in registry.names() {
            let strategy = registry.get(name).unwrap();
            assert_eq!(strategy.name(), name);
            assert!(!strategy.description().is_empty(), "{name}");
        }
    }

    #[test]
    fn only_qutrit_is_not_executable() {
        let registry = DecomposerRegistry::standard();
        for name in registry.names() {
            let strategy = registry.get(name).unwrap();
            assert_eq!(strategy.executable(), name != "qutrit", "{name}");
        }
    }

    #[test]
    fn every_executable_strategy_preserves_semantics_pre_route() {
        let program = three_gate_program();
        let registry = DecomposerRegistry::standard();
        for name in registry.names() {
            let strategy = registry.get(name).unwrap();
            if !strategy.executable() {
                continue;
            }
            let lowered = lower_flat(&*strategy, &program);
            assert_eq!(lowered.counts().three_qubit, 0, "{name}");
            assert!(
                circuits_equivalent(&program, &lowered, EPS).unwrap(),
                "{name} must preserve semantics"
            );
        }
    }

    #[test]
    fn placements_steer_the_standard_strategy() {
        let ccx = Instruction::new(Gate::Ccx, &[Qubit::new(0), Qubit::new(1), Qubit::new(2)]);
        let mut plan = DecompositionPlan::new();
        let six = StandardDecomposition.lower(&ccx, TrioPlacement::Triangle, &mut plan);
        assert_eq!(cx_count(&six), 6);
        let unknown = StandardDecomposition.lower(&ccx, TrioPlacement::Unknown, &mut plan);
        assert_eq!(cx_count(&unknown), 6, "pre-route falls back to 6-CNOT");
        for middle in 0..3 {
            let eight =
                StandardDecomposition.lower(&ccx, TrioPlacement::Line { middle }, &mut plan);
            assert_eq!(cx_count(&eight), 8, "middle {middle}");
            // Every CNOT touches the middle qubit: the two chain pairs.
            for instr in &eight {
                if instr.gate() == Gate::Cx {
                    assert!(
                        instr.qubits().iter().any(|q| q.index() == middle),
                        "middle {middle}: CX off the chain"
                    );
                }
            }
            let as_circuit = Circuit::from_instructions(3, eight).unwrap();
            let mut reference = Circuit::new(3);
            reference.ccx(0, 1, 2);
            assert!(
                circuits_equivalent(&reference, &as_circuit, EPS).unwrap(),
                "middle {middle}"
            );
        }
    }

    #[test]
    fn eight_strategy_respects_line_middle_for_ccz() {
        let ccz = Instruction::new(Gate::Ccz, &[Qubit::new(0), Qubit::new(1), Qubit::new(2)]);
        let mut plan = DecompositionPlan::new();
        for middle in 0..3 {
            let lowered =
                EightCnotDecomposition.lower(&ccz, TrioPlacement::Line { middle }, &mut plan);
            for instr in &lowered {
                if instr.gate() == Gate::Cx {
                    assert!(instr.qubits().iter().any(|q| q.index() == middle));
                }
            }
        }
    }

    #[test]
    fn margolus_plan_pairs_compute_uncompute() {
        // ccx, diagonal traffic, same ccx again: both approved.
        let mut c = Circuit::new(4);
        c.ccx(0, 1, 2).t(2).cz(2, 3).ccx(0, 1, 2);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 2);
        let lowered = lower_flat(&RelativePhaseDecomposition, &c);
        assert_eq!(cx_count_circuit(&lowered), 3 + 3, "both pairs use 3 CNOTs");
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
    }

    #[test]
    fn margolus_plan_blocks_on_non_diagonal_traffic() {
        // An H on a trio qubit between the pair makes the phase
        // observable: both fall back to the 6-CNOT form.
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).h(2).ccx(0, 1, 2);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 0);
        let lowered = lower_flat(&RelativePhaseDecomposition, &c);
        assert_eq!(cx_count_circuit(&lowered), 12);
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
    }

    #[test]
    fn margolus_plan_blocks_on_measurement() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).measure(2).ccx(0, 1, 2);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 0, "measurement is conservative");
    }

    #[test]
    fn margolus_plan_requires_identical_operand_order() {
        // Same unitary, permuted controls: the −1 lands on a different
        // basis state, so the phases would NOT cancel. Must not pair.
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).ccx(1, 0, 2);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 0);
        let lowered = lower_flat(&RelativePhaseDecomposition, &c);
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
    }

    #[test]
    fn margolus_allows_control_side_cx_traffic() {
        // CX *from* a trio qubit to an outside qubit is diagonal on the
        // trio (classical control) and must not block the pairing.
        let mut c = Circuit::new(4);
        c.ccx(0, 1, 2).cx(2, 3).ccx(0, 1, 2);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 2);
        let lowered = lower_flat(&RelativePhaseDecomposition, &c);
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
    }

    #[test]
    fn margolus_blocks_cx_into_the_trio() {
        let mut c = Circuit::new(4);
        c.ccx(0, 1, 2).cx(3, 2).ccx(0, 1, 2);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 0);
    }

    #[test]
    fn cswap_inner_ccx_never_consumes_a_margolus_decision() {
        // The cswap expands through a synthetic ccx over (0, 1, 2) — the
        // same triple as a planned Margolus pair. The synthetic gate must
        // not steal a decision (which would desync the pairing and break
        // phase cancellation).
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2).ccx(0, 1, 2).ccx(0, 1, 2);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 2);
        let lowered = lower_flat(&RelativePhaseDecomposition, &c);
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
        // cswap: 2 conjugating CX + 6-CNOT inner ccx; pair: 3 + 3.
        assert_eq!(cx_count_circuit(&lowered), 2 + 6 + 3 + 3);
    }

    #[test]
    fn unpaired_ccx_falls_back_to_standard() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2); // no uncompute anywhere
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 0);
        let lowered = lower_flat(&RelativePhaseDecomposition, &c);
        assert_eq!(cx_count_circuit(&lowered), 6);
    }

    #[test]
    fn interleaved_pairs_resolve_greedily() {
        // a, b, a, b over disjoint trios: both pairs approved.
        let mut c = Circuit::new(6);
        c.ccx(0, 1, 2).ccx(3, 4, 5).ccx(0, 1, 2).ccx(3, 4, 5);
        let plan = RelativePhaseDecomposition.plan(&c);
        assert_eq!(plan.margolus_count(), 4);
        let lowered = lower_flat(&RelativePhaseDecomposition, &c);
        assert!(circuits_equivalent(&c, &lowered, EPS).unwrap());
    }

    #[test]
    fn qutrit_cost_model_is_cheaper_in_two_qubit_gates() {
        let qutrit = QutritCostModel.trio_cost();
        let standard = StandardDecomposition.trio_cost();
        assert!(qutrit.two_qubit < standard.two_qubit);
        assert_eq!(qutrit.one_qubit, 0.0, "no T gates in the qutrit model");
    }

    #[test]
    fn handles_compare_and_resolve_by_name() {
        let named = DecomposerHandle::named("six");
        let custom = DecomposerHandle::Custom(Arc::new(SixCnotDecomposition));
        assert_eq!(named, custom);
        assert_eq!(named.name(), "six");
        assert!(named.resolve().is_ok());
        match DecomposerHandle::named("nope").resolve() {
            Err(name) => assert_eq!(name, "nope"),
            Ok(_) => panic!("unknown name must not resolve"),
        }
        assert_eq!(DecomposerHandle::default().name(), "standard");
        assert!(format!("{named:?}").contains("six"));
    }

    #[test]
    fn custom_strategies_can_be_registered_and_replaced() {
        let mut registry = DecomposerRegistry::standard();
        registry.register("custom", || Box::new(SixCnotDecomposition));
        assert_eq!(registry.len(), 7);
        assert!(registry.contains("custom"));
        registry.register("custom", || Box::new(EightCnotDecomposition));
        assert_eq!(registry.len(), 7, "replacement keeps order and count");
        let debug = format!("{registry:?}");
        assert!(debug.contains("custom"), "{debug}");
    }

    fn cx_count(instrs: &[Instruction]) -> usize {
        instrs.iter().filter(|i| i.gate() == Gate::Cx).count()
    }

    fn cx_count_circuit(c: &Circuit) -> usize {
        c.iter().filter(|i| i.gate() == Gate::Cx).count()
    }
}
