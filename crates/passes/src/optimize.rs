//! Circuit-level optimizations mirroring Qiskit's "light optimization"
//! (paper §5.2): inverse-pair cancellation and single-qubit-run
//! consolidation into `u3` gates.

use trios_ir::{Circuit, Gate, Instruction, Qubit};
use trios_sim::{
    mat2_eq_up_to_phase, mat2_mul, single_qubit_matrix, zyz_decompose, Mat2, MAT2_IDENTITY,
};

/// Which optimizations [`optimize`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeOptions {
    /// Cancel adjacent inverse pairs (`CX·CX`, `T·T†`, `SWAP·SWAP`, …).
    pub cancel_inverses: bool,
    /// Merge runs of single-qubit gates into one `u3` via ZYZ resynthesis.
    pub merge_single_qubit: bool,
    /// Drop identity gates and zero-angle rotations.
    pub remove_trivial: bool,
    /// Cancel inverse pairs separated by provably-commuting gates
    /// ([`cancel_commuting_inverses`](crate::cancel_commuting_inverses)).
    /// Off by default: the paper's configurations model Qiskit's *light*
    /// optimization (§5.2).
    pub cancel_commuting: bool,
    /// Merge Z-rotations across commuting gates
    /// ([`merge_commuting_rotations`](crate::merge_commuting_rotations)).
    /// Off by default, as above.
    pub merge_rotations: bool,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            cancel_inverses: true,
            merge_single_qubit: true,
            remove_trivial: true,
            cancel_commuting: false,
            merge_rotations: false,
        }
    }
}

impl OptimizeOptions {
    /// No optimization at all (for ablations).
    pub fn none() -> Self {
        OptimizeOptions {
            cancel_inverses: false,
            merge_single_qubit: false,
            remove_trivial: false,
            cancel_commuting: false,
            merge_rotations: false,
        }
    }

    /// Everything on, including the commutation-aware passes — heavier than
    /// the paper's light-optimization setting, for the optimization-level
    /// ablation.
    pub fn full() -> Self {
        OptimizeOptions {
            cancel_commuting: true,
            merge_rotations: true,
            ..OptimizeOptions::default()
        }
    }
}

/// Runs the selected optimizations. Semantics-preserving by construction;
/// the test suite additionally verifies this with the statevector
/// simulator.
pub fn optimize(circuit: &Circuit, options: OptimizeOptions) -> Circuit {
    let mut current = circuit.clone();
    if options.remove_trivial {
        current = remove_trivial_gates(&current);
    }
    if options.cancel_inverses {
        current = cancel_adjacent_inverses(&current);
    }
    if options.cancel_commuting {
        current = crate::cancel_commuting_inverses(&current);
    }
    if options.merge_rotations {
        current = crate::merge_commuting_rotations(&current);
        if options.cancel_commuting {
            // Merged rotations can expose new commuting inverse pairs.
            current = crate::cancel_commuting_inverses(&current);
        }
    }
    if options.merge_single_qubit {
        current = merge_single_qubit_runs(&current);
        if options.remove_trivial {
            current = remove_trivial_gates(&current);
        }
    }
    current
}

/// Removes identity gates and (near-)zero-angle rotations.
pub fn remove_trivial_gates(circuit: &Circuit) -> Circuit {
    const EPS: f64 = 1e-12;
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
    for instr in circuit.iter() {
        let trivial = match instr.gate() {
            Gate::I => true,
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::U1(a) | Gate::Cp(a) => a.abs() < EPS,
            Gate::Xpow(t) | Gate::Cxpow(t) => t.abs() < EPS,
            Gate::U3(t, p, l) => t.abs() < EPS && (p + l).abs() < EPS,
            _ => false,
        };
        if !trivial {
            out.push(*instr);
        }
    }
    out
}

/// Cancels adjacent inverse pairs, iterating to a fixpoint so that
/// cancellations exposed by earlier ones (e.g. `H · CX · CX · H`) are also
/// removed.
///
/// Two instructions cancel when no other gate touches their qubits in
/// between, their gates are mutual inverses, and their operand orders are
/// compatible (exact match, except that the symmetric gates CZ/CP/SWAP may
/// have their operands flipped, and Toffoli controls may commute).
pub fn cancel_adjacent_inverses(circuit: &Circuit) -> Circuit {
    let mut instrs: Vec<Instruction> = circuit.instructions().to_vec();
    loop {
        let (next, changed) = cancel_pass(circuit.num_qubits(), &instrs);
        instrs = next;
        if !changed {
            break;
        }
    }
    Circuit::from_instructions(circuit.num_qubits(), instrs)
        .expect("cancellation preserves validity")
        .tap_name(circuit.name())
}

fn cancel_pass(num_qubits: usize, instrs: &[Instruction]) -> (Vec<Instruction>, bool) {
    let mut out: Vec<Option<Instruction>> = Vec::with_capacity(instrs.len());
    let mut last_touch: Vec<Option<usize>> = vec![None; num_qubits];
    let mut changed = false;

    for instr in instrs {
        let qubits = instr.qubits();
        // The candidate for cancellation is the unique previous instruction
        // that was the last to touch *all* of this instruction's qubits.
        let candidate = {
            let first = last_touch[qubits[0].index()];
            if qubits.iter().all(|q| last_touch[q.index()] == first) {
                first
            } else {
                None
            }
        };
        let cancelled = candidate
            .and_then(|i| out[i].map(|prev| (i, prev)))
            .filter(|(_, prev)| {
                // Require the previous instruction to touch exactly the same
                // qubit set (otherwise some of its qubits were re-touched).
                prev.qubits().len() == qubits.len() && operands_cancel(prev, instr)
            });
        match cancelled {
            Some((i, _)) => {
                out[i] = None;
                for q in qubits {
                    last_touch[q.index()] = None;
                }
                changed = true;
            }
            None => {
                out.push(Some(*instr));
                let idx = out.len() - 1;
                for q in qubits {
                    last_touch[q.index()] = Some(idx);
                }
            }
        }
    }
    (out.into_iter().flatten().collect(), changed)
}

pub(crate) fn operands_cancel(prev: &Instruction, next: &Instruction) -> bool {
    if !prev.gate().cancels_with(next.gate()) {
        return false;
    }
    let (p, n) = (prev.qubits(), next.qubits());
    match next.gate() {
        // Symmetric two-qubit gates: operand order is irrelevant.
        Gate::Cz | Gate::Cp(_) | Gate::Swap => {
            (p[0] == n[0] && p[1] == n[1]) || (p[0] == n[1] && p[1] == n[0])
        }
        // Toffoli: controls commute, target must match.
        Gate::Ccx => {
            p[2] == n[2] && ((p[0] == n[0] && p[1] == n[1]) || (p[0] == n[1] && p[1] == n[0]))
        }
        // CCZ: fully symmetric — same qubit set in any order.
        Gate::Ccz => {
            let mut ps = [p[0].index(), p[1].index(), p[2].index()];
            let mut ns = [n[0].index(), n[1].index(), n[2].index()];
            ps.sort_unstable();
            ns.sort_unstable();
            ps == ns
        }
        // Fredkin: control must match, swapped pair is unordered.
        Gate::Cswap => {
            p[0] == n[0] && ((p[1] == n[1] && p[2] == n[2]) || (p[1] == n[2] && p[2] == n[1]))
        }
        // Everything else: exact operand match.
        _ => p == n,
    }
}

/// Merges each maximal run of single-qubit gates into one `u3` gate (or
/// nothing, when the run multiplies to the identity), using ZYZ
/// resynthesis. This is the pass Qiskit calls "single qubit gate
/// consolidation" (paper §5.2).
pub fn merge_single_qubit_runs(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut out = Circuit::with_name(n, circuit.name().to_string());
    let mut pending: Vec<Option<Mat2>> = vec![None; n];

    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Mat2>>, q: usize| {
        if let Some(m) = pending[q].take() {
            if !mat2_eq_up_to_phase(&m, &MAT2_IDENTITY, 1e-10) {
                let z = zyz_decompose(&m);
                out.push(Instruction::new(
                    Gate::U3(z.theta, z.phi, z.lambda),
                    &[Qubit::new(q)],
                ));
            }
        }
    };

    for instr in circuit.iter() {
        let gate = instr.gate();
        if gate.is_single_qubit() && !gate.is_measurement() {
            if let Some(m) = single_qubit_matrix(gate) {
                let q = instr.qubit(0).index();
                let acc = pending[q].unwrap_or(MAT2_IDENTITY);
                pending[q] = Some(mat2_mul(&m, &acc));
                continue;
            }
        }
        for q in instr.qubits() {
            flush(&mut out, &mut pending, q.index());
        }
        out.push(*instr);
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    out
}

/// Small extension trait to keep the name when rebuilding circuits.
pub(crate) trait TapName {
    fn tap_name(self, name: &str) -> Self;
}

impl TapName for Circuit {
    fn tap_name(mut self, name: &str) -> Self {
        self.set_name(name.to_string());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::circuits_equivalent;

    const EPS: f64 = 1e-9;

    #[test]
    fn cancels_simple_pairs() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).t(0).tdg(0).h(1);
        let opt = cancel_adjacent_inverses(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].gate(), Gate::H);
    }

    #[test]
    fn does_not_cancel_through_interleaving_gates() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(1).cx(0, 1);
        let opt = cancel_adjacent_inverses(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn does_not_cancel_reversed_cx() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        assert_eq!(cancel_adjacent_inverses(&c).len(), 2);
    }

    #[test]
    fn cancels_symmetric_gates_in_either_order() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(1, 0).swap(0, 1).swap(1, 0);
        assert_eq!(cancel_adjacent_inverses(&c).len(), 0);
    }

    #[test]
    fn cancels_toffoli_with_commuted_controls() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).ccx(1, 0, 2);
        assert_eq!(cancel_adjacent_inverses(&c).len(), 0);
        let mut d = Circuit::new(3);
        d.ccx(0, 1, 2).ccx(0, 2, 1); // different target: keep
        assert_eq!(cancel_adjacent_inverses(&d).len(), 2);
    }

    #[test]
    fn fixpoint_cancellation_unwraps_nested_pairs() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).cx(0, 1).h(0);
        assert_eq!(cancel_adjacent_inverses(&c).len(), 0);
    }

    #[test]
    fn rotation_pairs_cancel() {
        let mut c = Circuit::new(1);
        c.rz(0.7, 0).rz(-0.7, 0).rx(1.1, 0).rx(-1.1, 0);
        assert_eq!(cancel_adjacent_inverses(&c).len(), 0);
    }

    #[test]
    fn merge_collapses_runs_to_u3() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(0).s(0).cx(0, 1).h(1);
        let merged = merge_single_qubit_runs(&c);
        // One u3 for qubit 0's run, the CX, one u3 for the trailing H.
        assert_eq!(merged.len(), 3);
        assert!(circuits_equivalent(&c, &merged, EPS).unwrap());
    }

    #[test]
    fn merge_drops_identity_runs() {
        let mut c = Circuit::new(1);
        c.h(0).h(0).x(0).x(0);
        assert_eq!(merge_single_qubit_runs(&c).len(), 0);
    }

    #[test]
    fn merge_flushes_before_measure() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        let merged = merge_single_qubit_runs(&c);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.instructions()[1].gate(), Gate::Measure);
    }

    #[test]
    fn remove_trivial_drops_zero_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0.0, 0).u1(0.0, 1).cp(0.0, 0, 1).h(0);
        let cleaned = remove_trivial_gates(&c);
        assert_eq!(cleaned.len(), 1);
    }

    #[test]
    fn optimize_preserves_semantics_on_mixed_circuit() {
        let mut c = Circuit::new(4);
        c.h(0)
            .t(0)
            .tdg(0)
            .cx(0, 1)
            .cx(0, 1)
            .h(2)
            .s(2)
            .ccx(0, 1, 3)
            .swap(2, 3)
            .swap(2, 3)
            .rz(0.4, 1)
            .h(1)
            .cz(1, 2);
        let opt = optimize(&c, OptimizeOptions::default());
        assert!(opt.len() < c.len());
        assert!(circuits_equivalent(&c, &opt, EPS).unwrap());
    }

    #[test]
    fn optimize_none_is_identity() {
        let mut c = Circuit::new(2);
        c.h(0).h(0);
        let opt = optimize(&c, OptimizeOptions::none());
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn measure_never_cancels() {
        let mut c = Circuit::new(1);
        c.measure(0).measure(0);
        assert_eq!(cancel_adjacent_inverses(&c).len(), 2);
    }
}
