//! Decompositions for the non-Toffoli three-qubit gates the extended Trios
//! router gathers as units: CCZ and the Fredkin (controlled-SWAP) gate.
//!
//! The paper (§4) observes that Trios "can naturally be extended to any
//! multi-qubit operation"; these decompositions make that concrete for the
//! other two common three-qubit gates. Both reuse the Figure 3/4 Toffoli
//! structure:
//!
//! * the 6- and 8-CNOT Toffolis are `H(target) · CCZ · H(target)`, so
//!   deleting the two `H` gates yields a CCZ with the same connectivity
//!   requirements (triangle / line) and two fewer gates;
//! * the Fredkin is a Toffoli conjugated by CNOTs on the swapped pair.

use crate::{toffoli_6cnot, toffoli_8cnot_linear, DecompositionStrategy};
use crate::{DecompositionPlan, TrioPlacement};
use trios_ir::{Circuit, Gate, Instruction, Qubit};

/// The 6-CNOT CCZ: the Figure 3 Toffoli with its two `H` gates removed.
///
/// Like the 6-CNOT Toffoli it needs CNOTs between **all three** qubit
/// pairs, so it wants a connectivity triangle. CCZ is fully symmetric; the
/// operand order only changes which wires carry which corrections.
pub fn ccz_6cnot(a: Qubit, b: Qubit, c: Qubit) -> Vec<Instruction> {
    drop_hadamards(toffoli_6cnot(a, b, c))
}

/// The 8-CNOT linearly-connected CCZ: the Figure 4 Toffoli with its two
/// `H` gates removed.
///
/// CNOTs touch only the pairs `(end1, middle)` and `(middle, end2)`, so the
/// decomposition runs natively on a path `end1 – middle – end2`. Because
/// CCZ is symmetric, there is no target-placement constraint at all — any
/// operand may sit in the middle.
///
/// # Panics
///
/// Panics if the qubits are not distinct.
pub fn ccz_8cnot_linear(end1: Qubit, middle: Qubit, end2: Qubit) -> Vec<Instruction> {
    drop_hadamards(toffoli_8cnot_linear(end1, middle, end2, end1))
}

fn drop_hadamards(instructions: Vec<Instruction>) -> Vec<Instruction> {
    instructions
        .into_iter()
        .filter(|i| i.gate() != Gate::H)
        .collect()
}

/// The Fredkin gate as a CNOT-conjugated Toffoli:
/// `CSWAP(c; a, b) = CX(b, a) · CCX(c, a, b) · CX(b, a)`.
///
/// The returned sequence still contains a `ccx` instruction so the caller
/// (the Trios router's second pass, or [`decompose_three_qubit_gates`])
/// can choose the placement-appropriate Toffoli decomposition for it.
pub fn cswap_via_ccx(c: Qubit, a: Qubit, b: Qubit) -> Vec<Instruction> {
    vec![
        Instruction::new(Gate::Cx, &[b, a]),
        Instruction::new(Gate::Ccx, &[c, a, b]),
        Instruction::new(Gate::Cx, &[b, a]),
    ]
}

/// Replaces every three-qubit gate (`ccx`, `ccz`, `cswap`) in `circuit`
/// with the chosen decomposition, leaving all other gates untouched.
/// Placement-unaware — this is the baseline's
/// *first-pass-decomposes-everything* behaviour (paper Fig. 2a) extended to
/// the full three-qubit gate set.
///
/// The strategy sees [`TrioPlacement::Unknown`] for every gate: connectivity
/// awareness only exists *after* routing, which is precisely the paper's
/// point. The strategy's [`plan`](DecompositionStrategy::plan) is computed
/// once over the whole circuit, so analyses like the `relative-phase`
/// compute/uncompute pairing work on this pre-route path too.
pub fn decompose_three_qubit_gates(
    circuit: &Circuit,
    strategy: &dyn DecompositionStrategy,
) -> Circuit {
    let mut plan = strategy.plan(circuit);
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
    for instr in circuit.iter() {
        match instr.gate() {
            Gate::Ccx | Gate::Ccz | Gate::Cswap => {
                let mut lowered = Vec::new();
                lower_recursive(instr, strategy, &mut plan, &mut lowered);
                for li in lowered {
                    out.push(li);
                }
            }
            _ => {
                out.push(*instr);
            }
        }
    }
    out
}

/// Lowers one three-qubit instruction, re-lowering any three-qubit gates in
/// its expansion (the `cswap` expansions contain a `ccx`).
fn lower_recursive(
    instr: &Instruction,
    strategy: &dyn DecompositionStrategy,
    plan: &mut DecompositionPlan,
    out: &mut Vec<Instruction>,
) {
    for li in strategy.lower(instr, TrioPlacement::Unknown, plan) {
        if li.gate().is_three_qubit() {
            lower_recursive(&li, strategy, plan, out);
        } else {
            out.push(li);
        }
    }
}

/// Lowers a single three-qubit instruction with canonical operand roles and
/// no placement information, using a fresh (empty) plan — per-circuit
/// analyses do not apply through this single-instruction entry point.
///
/// # Panics
///
/// Panics if the instruction is not a three-qubit gate.
pub fn decompose_one(
    instr: &Instruction,
    strategy: &dyn DecompositionStrategy,
) -> Vec<Instruction> {
    assert!(
        instr.gate().is_three_qubit(),
        "decompose_one expects a three-qubit gate, got {:?}",
        instr.gate()
    );
    let mut plan = DecompositionPlan::new();
    let mut out = Vec::new();
    lower_recursive(instr, strategy, &mut plan, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::circuits_equivalent;

    const EPS: f64 = 1e-9;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn circuit_of(instrs: Vec<Instruction>) -> Circuit {
        Circuit::from_instructions(3, instrs).unwrap()
    }

    fn reference_ccz() -> Circuit {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        c
    }

    #[test]
    fn ccz_6cnot_matches_ccz() {
        let dec = circuit_of(ccz_6cnot(q(0), q(1), q(2)));
        assert_eq!(dec.counts().cx, 6);
        assert_eq!(dec.counts().one_qubit, 7, "only T/T† remain");
        assert!(circuits_equivalent(&reference_ccz(), &dec, EPS).unwrap());
    }

    #[test]
    fn ccz_6cnot_is_operand_order_invariant() {
        for (a, b, c) in [(1, 2, 0), (2, 0, 1), (1, 0, 2), (2, 1, 0), (0, 2, 1)] {
            let dec = circuit_of(ccz_6cnot(q(a), q(b), q(c)));
            assert!(
                circuits_equivalent(&reference_ccz(), &dec, EPS).unwrap(),
                "order ({a},{b},{c})"
            );
        }
    }

    #[test]
    fn ccz_8cnot_matches_ccz() {
        let dec = circuit_of(ccz_8cnot_linear(q(0), q(1), q(2)));
        assert_eq!(dec.counts().cx, 8);
        assert!(circuits_equivalent(&reference_ccz(), &dec, EPS).unwrap());
    }

    #[test]
    fn ccz_8cnot_any_middle_works() {
        // CCZ symmetry: the physical middle can be any operand.
        for (e1, m, e2) in [(0, 1, 2), (1, 0, 2), (0, 2, 1)] {
            let dec = circuit_of(ccz_8cnot_linear(q(e1), q(m), q(e2)));
            assert!(
                circuits_equivalent(&reference_ccz(), &dec, EPS).unwrap(),
                "middle {m}"
            );
        }
    }

    #[test]
    fn ccz_8cnot_only_uses_chain_pairs() {
        let dec = ccz_8cnot_linear(q(0), q(1), q(2));
        for instr in &dec {
            if instr.gate() == Gate::Cx {
                let pair = (instr.qubit(0).index(), instr.qubit(1).index());
                assert!(
                    matches!(pair, (0, 1) | (1, 0) | (1, 2) | (2, 1)),
                    "CX on non-chain pair {pair:?}"
                );
            }
        }
    }

    #[test]
    fn cswap_via_ccx_matches_fredkin() {
        let mut reference = Circuit::new(3);
        reference.cswap(0, 1, 2);
        let dec = circuit_of(cswap_via_ccx(q(0), q(1), q(2)));
        assert!(circuits_equivalent(&reference, &dec, EPS).unwrap());
    }

    #[test]
    fn cswap_swapped_pair_is_symmetric() {
        // CSWAP(c; a, b) = CSWAP(c; b, a).
        let dec_ab = circuit_of(cswap_via_ccx(q(0), q(1), q(2)));
        let dec_ba = circuit_of(cswap_via_ccx(q(0), q(2), q(1)));
        assert!(circuits_equivalent(&dec_ab, &dec_ba, EPS).unwrap());
    }

    #[test]
    fn decompose_three_qubit_gates_handles_all_gates() {
        use crate::DecomposerRegistry;
        let mut c = Circuit::new(4);
        c.h(0).ccx(0, 1, 2).ccz(1, 2, 3).cswap(0, 2, 3).t(1);
        for name in ["six", "eight", "standard", "tdepth", "relative-phase"] {
            let strategy = DecomposerRegistry::standard().get(name).unwrap();
            let lowered = decompose_three_qubit_gates(&c, &*strategy);
            assert_eq!(lowered.counts().three_qubit, 0, "{name}");
            assert!(circuits_equivalent(&c, &lowered, EPS).unwrap(), "{name}");
        }
    }

    #[test]
    fn decompose_one_counts() {
        use crate::SixCnotDecomposition;
        let ccz = Instruction::new(Gate::Ccz, &[q(0), q(1), q(2)]);
        assert_eq!(
            Circuit::from_instructions(3, decompose_one(&ccz, &SixCnotDecomposition))
                .unwrap()
                .counts()
                .cx,
            6
        );
        let cswap = Instruction::new(Gate::Cswap, &[q(0), q(1), q(2)]);
        assert_eq!(
            Circuit::from_instructions(3, decompose_one(&cswap, &SixCnotDecomposition))
                .unwrap()
                .counts()
                .cx,
            8
        );
    }

    #[test]
    #[should_panic(expected = "expects a three-qubit gate")]
    fn decompose_one_rejects_two_qubit_gates() {
        use crate::SixCnotDecomposition;
        let cx = Instruction::new(Gate::Cx, &[q(0), q(1)]);
        decompose_one(&cx, &SixCnotDecomposition);
    }
}
