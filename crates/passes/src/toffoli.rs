//! Toffoli decompositions: the paper's Figure 3 (6-CNOT, needs a triangle)
//! and Figure 4 (8-CNOT, needs only a line), plus the T-depth-4 and
//! Margolus variants reachable through the
//! [`DecompositionStrategy`](crate::DecompositionStrategy) registry.

use crate::DecompositionStrategy;
use trios_ir::{Circuit, Gate, Instruction, Qubit};

/// The canonical 6-CNOT Toffoli (Nielsen & Chuang; paper Figure 3).
///
/// Uses CNOTs between **all three** qubit pairs: `(c2,t)`, `(c1,t)`, and
/// `(c1,c2)` — fine on a triangle, expensive anywhere else.
pub fn toffoli_6cnot(c1: Qubit, c2: Qubit, t: Qubit) -> Vec<Instruction> {
    let i = |g: Gate, qs: &[Qubit]| Instruction::new(g, qs);
    vec![
        i(Gate::H, &[t]),
        i(Gate::Cx, &[c2, t]),
        i(Gate::Tdg, &[t]),
        i(Gate::Cx, &[c1, t]),
        i(Gate::T, &[t]),
        i(Gate::Cx, &[c2, t]),
        i(Gate::Tdg, &[t]),
        i(Gate::Cx, &[c1, t]),
        i(Gate::T, &[c2]),
        i(Gate::T, &[t]),
        i(Gate::H, &[t]),
        i(Gate::Cx, &[c1, c2]),
        i(Gate::T, &[c1]),
        i(Gate::Tdg, &[c2]),
        i(Gate::Cx, &[c1, c2]),
    ]
}

/// The 8-CNOT linearly-connected Toffoli (Schuch; paper Figure 4).
///
/// CNOTs touch only the pairs `(end1, middle)` and `(middle, end2)`, so the
/// decomposition runs natively on a path `end1 – middle – end2`. Built as
/// `H(target) · CCZ · H(target)` where the CCZ phase polynomial accumulates
/// parities on the middle and far wires; since CCZ is symmetric, **any** of
/// the three qubits may be the target — the paper's "simply move the two H
/// gates" observation.
///
/// # Panics
///
/// Panics if `target` is not one of the three qubits or the qubits are not
/// distinct.
pub fn toffoli_8cnot_linear(
    end1: Qubit,
    middle: Qubit,
    end2: Qubit,
    target: Qubit,
) -> Vec<Instruction> {
    assert!(
        target == end1 || target == middle || target == end2,
        "target {target} must be one of the trio"
    );
    assert!(
        end1 != middle && middle != end2 && end1 != end2,
        "trio qubits must be distinct"
    );
    let i = |g: Gate, qs: &[Qubit]| Instruction::new(g, qs);
    let (a, m, b) = (end1, middle, end2);
    vec![
        i(Gate::H, &[target]),
        // CCZ over the a–m–b chain: 8 CNOTs, 7 T/T†.
        i(Gate::T, &[a]),
        i(Gate::T, &[m]),
        i(Gate::T, &[b]),
        i(Gate::Cx, &[m, b]),
        i(Gate::Tdg, &[b]),
        i(Gate::Cx, &[a, m]),
        i(Gate::Tdg, &[m]),
        i(Gate::Cx, &[m, b]),
        i(Gate::Tdg, &[b]),
        i(Gate::Cx, &[a, m]),
        i(Gate::Cx, &[m, b]),
        i(Gate::T, &[b]),
        i(Gate::Cx, &[a, m]),
        i(Gate::Cx, &[m, b]),
        i(Gate::Cx, &[a, m]),
        i(Gate::H, &[target]),
    ]
}

/// The 8-CNOT Toffoli in its *canonical* role assignment (second control as
/// the middle qubit), used by the baseline "Qiskit (8-CNOT Toffoli)"
/// configuration that decomposes before routing and therefore cannot know
/// the placement.
pub fn toffoli_8cnot(c1: Qubit, c2: Qubit, t: Qubit) -> Vec<Instruction> {
    toffoli_8cnot_linear(c1, c2, t, t)
}

/// The Margolus "simplified Toffoli": **3 CNOTs**, equal to the Toffoli up
/// to a `−1` phase on the `|101⟩` input (controls set with the target
/// clear ⊕ …; exactly one basis state picks up a sign).
///
/// Not a drop-in replacement — the relative phase is real — but inside
/// compute/uncompute pairs (the dominant Toffoli pattern in the paper's
/// CnX benchmarks, where every borrowed-bit Toffoli is later undone) the
/// phases cancel and the 3-CNOT form is sound. Exposed for such
/// algorithm-aware lowering; the routers never substitute it silently.
///
/// Like the 6-CNOT form it touches the pairs `(c2, t)` and `(c1, t)` —
/// only two pairs, so a line with the **target in the middle** suffices.
pub fn toffoli_margolus(c1: Qubit, c2: Qubit, t: Qubit) -> Vec<Instruction> {
    use std::f64::consts::FRAC_PI_4;
    let i = |g: Gate, qs: &[Qubit]| Instruction::new(g, qs);
    vec![
        i(Gate::Ry(FRAC_PI_4), &[t]),
        i(Gate::Cx, &[c2, t]),
        i(Gate::Ry(FRAC_PI_4), &[t]),
        i(Gate::Cx, &[c1, t]),
        i(Gate::Ry(-FRAC_PI_4), &[t]),
        i(Gate::Cx, &[c2, t]),
        i(Gate::Ry(-FRAC_PI_4), &[t]),
    ]
}

/// The T-depth-4 CCZ phase network: 6 CNOTs and 7 T/T† gates arranged so
/// the T gates fit in **four** sequential layers (the Fig. 3 form needs
/// six). The phase polynomial accumulates
/// `a + b + c − (a⊕b) + (a⊕b⊕c) − (b⊕c) − (a⊕c)` — exactly CCZ — while
/// restoring every wire. Like the 6-CNOT form it uses all three qubit
/// pairs, so it shares the triangle connectivity class.
///
/// The trade this strategy makes: on fault-tolerant hardware whose
/// magic-state factories serialize T gates, sequential T *layers* (not
/// CNOTs) dominate latency, and four beats six.
pub fn ccz_tdepth4(a: Qubit, b: Qubit, c: Qubit) -> Vec<Instruction> {
    let i = |g: Gate, qs: &[Qubit]| Instruction::new(g, qs);
    vec![
        // Layer 1: three T gates in parallel.
        i(Gate::T, &[a]),
        i(Gate::T, &[b]),
        i(Gate::T, &[c]),
        i(Gate::Cx, &[a, b]),
        i(Gate::Cx, &[b, c]),
        // Layer 2: T†(a⊕b) and T(a⊕b⊕c) in parallel.
        i(Gate::Tdg, &[b]),
        i(Gate::T, &[c]),
        i(Gate::Cx, &[a, c]),
        // Layer 3: T†(b⊕c).
        i(Gate::Tdg, &[c]),
        i(Gate::Cx, &[b, c]),
        // Layer 4: T†(a⊕c).
        i(Gate::Tdg, &[c]),
        i(Gate::Cx, &[a, b]),
        i(Gate::Cx, &[a, c]),
    ]
}

/// The T-depth-4 Toffoli: `H(t) · ccz_tdepth4 · H(t)`.
pub fn toffoli_tdepth4(c1: Qubit, c2: Qubit, t: Qubit) -> Vec<Instruction> {
    let mut out = vec![Instruction::new(Gate::H, &[t])];
    out.extend(ccz_tdepth4(c1, c2, t));
    out.push(Instruction::new(Gate::H, &[t]));
    out
}

/// Replaces every Toffoli in `circuit` with the chosen decomposition,
/// leaving all other gates untouched. Placement-unaware — this is the
/// baseline's *first-pass-decomposes-everything* behaviour (paper Fig. 2a).
///
/// Also lowers the other three-qubit gates (`ccz`, `cswap`) so the
/// baseline pipeline accepts the extended gate set; this is a convenience
/// alias for [`decompose_three_qubit_gates`](crate::decompose_three_qubit_gates).
pub fn decompose_toffolis(circuit: &Circuit, strategy: &dyn DecompositionStrategy) -> Circuit {
    crate::decompose_three_qubit_gates(circuit, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_sim::circuits_equivalent;

    const EPS: f64 = 1e-9;

    fn q(i: usize) -> Qubit {
        Qubit::new(i)
    }

    fn reference_toffoli(c1: usize, c2: usize, t: usize) -> Circuit {
        let mut c = Circuit::new(3);
        c.ccx(c1, c2, t);
        c
    }

    fn circuit_of(instrs: Vec<Instruction>) -> Circuit {
        Circuit::from_instructions(3, instrs).unwrap()
    }

    #[test]
    fn six_cnot_matches_toffoli() {
        let dec = circuit_of(toffoli_6cnot(q(0), q(1), q(2)));
        assert_eq!(dec.counts().cx, 6);
        assert!(circuits_equivalent(&reference_toffoli(0, 1, 2), &dec, EPS).unwrap());
    }

    #[test]
    fn six_cnot_matches_toffoli_any_operand_order() {
        for (c1, c2, t) in [(1, 2, 0), (2, 0, 1), (1, 0, 2)] {
            let dec = circuit_of(toffoli_6cnot(q(c1), q(c2), q(t)));
            assert!(
                circuits_equivalent(&reference_toffoli(c1, c2, t), &dec, EPS).unwrap(),
                "roles ({c1},{c2},{t})"
            );
        }
    }

    #[test]
    fn eight_cnot_matches_toffoli() {
        // Chain 0–1–2 with target 2 (an end).
        let dec = circuit_of(toffoli_8cnot_linear(q(0), q(1), q(2), q(2)));
        assert_eq!(dec.counts().cx, 8);
        assert!(circuits_equivalent(&reference_toffoli(0, 1, 2), &dec, EPS).unwrap());
    }

    #[test]
    fn eight_cnot_target_can_be_any_qubit() {
        // CCZ symmetry: controls are whichever two qubits are not the target.
        for target in [0usize, 1, 2] {
            let dec = circuit_of(toffoli_8cnot_linear(q(0), q(1), q(2), q(target)));
            let controls: Vec<usize> = (0..3).filter(|&x| x != target).collect();
            let reference = reference_toffoli(controls[0], controls[1], target);
            assert!(
                circuits_equivalent(&reference, &dec, EPS).unwrap(),
                "target {target}"
            );
        }
    }

    #[test]
    fn eight_cnot_only_uses_chain_pairs() {
        let dec = toffoli_8cnot_linear(q(0), q(1), q(2), q(2));
        for instr in &dec {
            if instr.gate() == Gate::Cx {
                let pair = (instr.qubit(0).index(), instr.qubit(1).index());
                assert!(
                    matches!(pair, (0, 1) | (1, 0) | (1, 2) | (2, 1)),
                    "CX on non-chain pair {pair:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_eight_cnot_role_assignment() {
        let dec = circuit_of(toffoli_8cnot(q(0), q(1), q(2)));
        assert!(circuits_equivalent(&reference_toffoli(0, 1, 2), &dec, EPS).unwrap());
    }

    #[test]
    #[should_panic(expected = "must be one of the trio")]
    fn eight_cnot_rejects_foreign_target() {
        toffoli_8cnot_linear(q(0), q(1), q(2), q(3));
    }

    #[test]
    fn margolus_matches_toffoli_up_to_basis_phases() {
        use trios_sim::State;
        // On every basis input the Margolus form produces the same basis
        // output as CCX, with a −1 exactly on |101⟩ (c1 set, c2 clear,
        // t set — index order q0=c1, q1=c2, q2=t).
        let dec = circuit_of(toffoli_margolus(q(0), q(1), q(2)));
        for input in 0..8usize {
            let mut prep = Circuit::new(3);
            for b in 0..3 {
                if (input >> b) & 1 == 1 {
                    prep.x(b);
                }
            }
            let mut reference = prep.clone();
            reference.ccx(0, 1, 2);
            let expected_index = {
                let s = State::run(&reference).unwrap();
                (0..8).find(|&k| s.probability(k) > 0.5).unwrap()
            };
            let mut margolus = prep;
            margolus.append(&dec);
            let s = State::run(&margolus).unwrap();
            let amp = s.amplitudes()[expected_index];
            assert!(
                (amp.abs() - 1.0).abs() < 1e-9,
                "input {input:#05b}: wrong basis output"
            );
            let expected_sign = if input == 0b101 { -1.0 } else { 1.0 };
            assert!(
                (amp.re - expected_sign).abs() < 1e-9 && amp.im.abs() < 1e-9,
                "input {input:#05b}: phase {amp:?}, expected {expected_sign}"
            );
        }
    }

    #[test]
    fn margolus_compute_uncompute_pair_is_exact_identity() {
        // The use case that makes the 3-CNOT form sound: apply and undo.
        let pair = {
            let mut c = Circuit::new(3);
            for instr in toffoli_margolus(q(0), q(1), q(2)) {
                c.push(instr);
            }
            let inverse = c.inverse().unwrap();
            c.append(&inverse);
            c
        };
        let identity = Circuit::new(3);
        assert!(circuits_equivalent(&identity, &pair, EPS).unwrap());
    }

    #[test]
    fn margolus_uses_three_cnots_on_two_pairs() {
        let dec = toffoli_margolus(q(0), q(1), q(2));
        let cx_count = dec.iter().filter(|i| i.gate() == Gate::Cx).count();
        assert_eq!(cx_count, 3);
        for instr in &dec {
            if instr.gate() == Gate::Cx {
                assert_eq!(instr.qubit(1), q(2), "all CNOTs target the target");
            }
        }
    }

    #[test]
    fn tdepth4_ccz_matches_ccz() {
        let dec = Circuit::from_instructions(3, ccz_tdepth4(q(0), q(1), q(2))).unwrap();
        assert_eq!(dec.counts().cx, 6);
        assert_eq!(dec.counts().one_qubit, 7, "only T/T† remain");
        let mut reference = Circuit::new(3);
        reference.ccz(0, 1, 2);
        assert!(circuits_equivalent(&reference, &dec, EPS).unwrap());
    }

    #[test]
    fn tdepth4_ccz_is_operand_order_invariant() {
        let mut reference = Circuit::new(3);
        reference.ccz(0, 1, 2);
        for (a, b, c) in [(1, 2, 0), (2, 0, 1), (1, 0, 2), (2, 1, 0), (0, 2, 1)] {
            let dec = Circuit::from_instructions(3, ccz_tdepth4(q(a), q(b), q(c))).unwrap();
            assert!(
                circuits_equivalent(&reference, &dec, EPS).unwrap(),
                "order ({a},{b},{c})"
            );
        }
    }

    #[test]
    fn tdepth4_toffoli_matches_toffoli() {
        let dec = circuit_of(toffoli_tdepth4(q(0), q(1), q(2)));
        assert!(circuits_equivalent(&reference_toffoli(0, 1, 2), &dec, EPS).unwrap());
    }

    #[test]
    fn tdepth4_has_t_depth_four() {
        // Greedy layering of T/T† gates: a new layer starts only when a T
        // gate must wait for an earlier T *on a path through CNOTs*. With
        // the as-emitted order a simple dependency scan suffices: count
        // the maximal chains of T gates separated by CNOTs on their wire.
        let instrs = ccz_tdepth4(q(0), q(1), q(2));
        let mut depth_per_wire = [0usize; 3];
        let mut max_depth = 0;
        for instr in &instrs {
            match instr.gate() {
                Gate::T | Gate::Tdg => {
                    let w = instr.qubit(0).index();
                    depth_per_wire[w] += 1;
                    max_depth = max_depth.max(depth_per_wire[w]);
                }
                Gate::Cx => {
                    // A CNOT merges the dependency frontier of its wires.
                    let a = instr.qubit(0).index();
                    let b = instr.qubit(1).index();
                    let joined = depth_per_wire[a].max(depth_per_wire[b]);
                    depth_per_wire[a] = joined;
                    depth_per_wire[b] = joined;
                }
                g => panic!("unexpected gate {g:?} in the CCZ network"),
            }
        }
        assert_eq!(max_depth, 4, "T-depth must be exactly 4");
    }

    #[test]
    fn decompose_toffolis_replaces_all() {
        use crate::{EightCnotDecomposition, SixCnotDecomposition};
        let mut c = Circuit::new(4);
        c.h(0).ccx(0, 1, 2).cx(1, 3).ccx(1, 2, 3);
        let six = decompose_toffolis(&c, &SixCnotDecomposition);
        assert_eq!(six.counts().ccx, 0);
        assert_eq!(six.counts().cx, 1 + 2 * 6);
        let eight = decompose_toffolis(&c, &EightCnotDecomposition);
        assert_eq!(eight.counts().cx, 1 + 2 * 8);
    }

    #[test]
    fn decompose_toffolis_preserves_semantics() {
        use crate::DecomposerRegistry;
        let mut c = Circuit::new(4);
        c.h(0).h(1).ccx(0, 1, 2).cx(2, 3).ccx(1, 2, 3).t(0);
        for name in ["six", "eight", "tdepth"] {
            let strategy = DecomposerRegistry::standard().get(name).unwrap();
            let lowered = decompose_toffolis(&c, &*strategy);
            assert!(circuits_equivalent(&c, &lowered, EPS).unwrap(), "{name}");
        }
    }
}
