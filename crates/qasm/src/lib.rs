//! # trios-qasm — OpenQASM 2.0 interchange
//!
//! Text-format import/export for the Orchestrated Trios circuit IR, so
//! compiled programs can move to and from the wider ecosystem (Qiskit,
//! simulators, visualization tools):
//!
//! * [`emit`] renders a [`Circuit`] as an OpenQASM 2.0 program against
//!   `qelib1.inc`, declaring the few gates the library uses that the
//!   standard header lacks (`ccz`, `xpow`, `cxpow`).
//! * [`parse`] reads OpenQASM 2.0 back into a [`Circuit`], supporting
//!   multiple quantum registers (flattened in declaration order),
//!   parameter expressions with `pi`, and the full `qelib1` gate set this
//!   library understands.
//!
//! Round trips are exact: `parse(&emit(&c))` reproduces `c` gate for gate
//! (see the crate tests, which round-trip the entire benchmark suite and
//! compiled outputs).
//!
//! # Examples
//!
//! ```
//! use trios_ir::Circuit;
//! use trios_qasm::{emit, parse};
//!
//! # fn main() -> Result<(), trios_qasm::QasmError> {
//! let mut c = Circuit::new(3);
//! c.h(0).ccx(0, 1, 2).measure(2);
//! let text = emit(&c);
//! assert!(text.contains("ccx q[0], q[1], q[2];"));
//! let back = parse(&text)?;
//! assert_eq!(back.len(), c.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod emitter;
mod error;
mod parser;

pub use emitter::emit;
pub use error::QasmError;
pub use parser::parse;

// Re-exported for doc examples and downstream convenience.
pub use trios_ir::Circuit;
