//! OpenQASM 2.0 emission.

use std::fmt::Write as _;
use trios_ir::{Circuit, Gate};

/// Renders `circuit` as an OpenQASM 2.0 program.
///
/// The output targets `qelib1.inc` (Qiskit's extended header: `swap`,
/// `cswap`, `sx`, `sxdg`, `cu1`, `cu3` included) and declares the gates
/// this library uses beyond it (`ccz`, `xpow`, `cxpow`) on demand. One
/// quantum register `q` covers the circuit; a classical register `c` is
/// declared only when the circuit measures, and `measure q[i] -> c[i]`
/// keeps bit indices aligned with qubit indices.
///
/// Parameters are printed with enough digits to round-trip `f64` exactly,
/// so [`parse`](crate::parse) ∘ [`emit`] is the identity on circuits.
pub fn emit(circuit: &Circuit) -> String {
    let mut out = String::new();
    if !circuit.name().is_empty() {
        let _ = writeln!(out, "// {}", circuit.name());
    }
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");

    let counts = circuit.counts();
    if counts.ccz > 0 {
        out.push_str("gate ccz a, b, c { h c; ccx a, b, c; h c; }\n");
    }
    let uses = |g: fn(&Gate) -> bool| circuit.iter().any(|i| g(&i.gate()));
    if uses(|g| matches!(g, Gate::Xpow(_))) {
        // Exact up to global phase (QASM 2 gate bodies cannot express
        // global phase); our parser maps the name back natively.
        out.push_str("gate xpow(t) a { u3(pi*t, -pi/2, pi/2) a; }\n");
    }
    if uses(|g| matches!(g, Gate::Cxpow(_))) {
        out.push_str("gate cxpow(t) a, b { u1(pi*t/2) a; cu3(pi*t, -pi/2, pi/2) a, b; }\n");
    }

    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if counts.measure > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_qubits());
    }

    for instr in circuit.iter() {
        let gate = instr.gate();
        if gate.is_measurement() {
            let q = instr.qubit(0).index();
            let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
            continue;
        }
        out.push_str(qasm_name(gate));
        let params = gate.params();
        if !params.is_empty() {
            out.push('(');
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                // `{:?}` prints the shortest string that parses back to
                // the same f64.
                let _ = write!(out, "{p:?}");
            }
            out.push(')');
        }
        out.push(' ');
        for (i, q) in instr.qubits().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "q[{}]", q.index());
        }
        out.push_str(";\n");
    }
    out
}

/// The OpenQASM spelling of a gate (parameters excluded).
fn qasm_name(gate: Gate) -> &'static str {
    match gate {
        Gate::I => "id",
        Gate::Cp(_) => "cu1",
        g => g.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_register_layout() {
        let mut c = Circuit::with_name(2, "demo");
        c.h(0).cx(0, 1);
        let text = emit(&c);
        assert!(text.starts_with("// demo\nOPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
        assert!(text.contains("qreg q[2];"));
        assert!(!text.contains("creg"), "no measurements, no creg");
    }

    #[test]
    fn measurements_declare_and_target_creg() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0).measure(1);
        let text = emit(&c);
        assert!(text.contains("creg c[2];"));
        assert!(text.contains("measure q[0] -> c[0];"));
        assert!(text.contains("measure q[1] -> c[1];"));
    }

    #[test]
    fn nonstandard_gates_get_declarations_only_when_used() {
        let mut plain = Circuit::new(3);
        plain.ccx(0, 1, 2);
        assert!(!emit(&plain).contains("gate ccz"));
        let mut fancy = Circuit::new(3);
        fancy.ccz(0, 1, 2).xpow(0.5, 0);
        let text = emit(&fancy);
        assert!(text.contains("gate ccz a, b, c"));
        assert!(text.contains("gate xpow(t) a"));
        assert!(!text.contains("gate cxpow"));
    }

    #[test]
    fn parameters_round_trip_digits() {
        let mut c = Circuit::new(1);
        c.rz(std::f64::consts::FRAC_PI_4, 0);
        let text = emit(&c);
        assert!(text.contains("rz(0.7853981633974483) q[0];"));
    }

    #[test]
    fn cp_is_spelled_cu1() {
        let mut c = Circuit::new(2);
        c.cp(0.5, 0, 1);
        assert!(emit(&c).contains("cu1(0.5) q[0], q[1];"));
    }
}
