//! Parse errors.

use std::error::Error;
use std::fmt;

/// An error encountered while parsing OpenQASM 2.0 source.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// The source did not start with a supported `OPENQASM` version.
    UnsupportedVersion {
        /// The version string found (or a description of what was found).
        found: String,
    },
    /// A token that does not fit the grammar at this position.
    Unexpected {
        /// 1-based line number.
        line: usize,
        /// What the parser found.
        found: String,
        /// What it was expecting.
        expected: String,
    },
    /// A gate application naming a gate this library does not know.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The gate name.
        name: String,
    },
    /// A gate applied with the wrong number of qubits or parameters.
    WrongArity {
        /// 1-based line number.
        line: usize,
        /// The gate name.
        name: String,
        /// Expected operand or parameter count.
        expected: usize,
        /// Found operand or parameter count.
        found: usize,
    },
    /// A reference to an undeclared register or an out-of-range index.
    BadReference {
        /// 1-based line number.
        line: usize,
        /// Description of the reference.
        reference: String,
    },
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmError::UnsupportedVersion { found } => {
                write!(f, "unsupported OpenQASM version: {found}")
            }
            QasmError::Unexpected {
                line,
                found,
                expected,
            } => write!(f, "line {line}: expected {expected}, found {found}"),
            QasmError::UnknownGate { line, name } => {
                write!(f, "line {line}: unknown gate '{name}'")
            }
            QasmError::WrongArity {
                line,
                name,
                expected,
                found,
            } => write!(
                f,
                "line {line}: gate '{name}' takes {expected} arguments, found {found}"
            ),
            QasmError::BadReference { line, reference } => {
                write!(f, "line {line}: invalid reference {reference}")
            }
        }
    }
}

impl Error for QasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = QasmError::UnknownGate {
            line: 4,
            name: "frobnicate".into(),
        };
        assert!(e.to_string().contains("line 4"));
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(QasmError::UnsupportedVersion {
            found: "3.0".into(),
        });
    }
}
