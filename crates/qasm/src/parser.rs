//! OpenQASM 2.0 parsing.

use crate::QasmError;
use std::f64::consts::PI;
use trios_ir::{Circuit, Gate, Instruction, Qubit};

/// Parses OpenQASM 2.0 source into a [`Circuit`].
///
/// Supported surface: the `OPENQASM 2.0;` header, `include` (ignored),
/// any number of `qreg`/`creg` declarations (quantum registers are
/// flattened into one index space in declaration order), `gate`/`opaque`
/// declarations (bodies skipped — applications must still name gates this
/// library knows), `barrier` (ignored), `measure`, and gate applications
/// with parameter expressions over numbers, `pi`, `+ - * /` and
/// parentheses. Applying a one-qubit gate (or `measure`) to a bare
/// register name broadcasts it across the register.
///
/// # Errors
///
/// Returns a [`QasmError`] describing the line and cause: unsupported
/// version, syntax errors, unknown gates, arity mismatches, or references
/// to undeclared registers / out-of-range indices.
pub fn parse(source: &str) -> Result<Circuit, QasmError> {
    Parser::new(source)?.run()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Punct(char),
    Arrow,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "'{s}'"),
            Tok::Number(n) => write!(f, "number {n}"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::Punct(c) => write!(f, "'{c}'"),
            Tok::Arrow => write!(f, "'->'"),
        }
    }
}

fn tokenize(source: &str) -> Result<Vec<(usize, Tok)>, QasmError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1) == Some(&'>') => {
                toks.push((line, Tok::Arrow));
                i += 2;
            }
            ';' | ',' | '(' | ')' | '[' | ']' | '{' | '}' | '+' | '-' | '*' | '/' => {
                toks.push((line, Tok::Punct(c)));
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(QasmError::Unexpected {
                        line,
                        found: "end of file".into(),
                        expected: "closing '\"'".into(),
                    });
                }
                toks.push((line, Tok::Str(bytes[start..j].iter().collect())));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == '.'
                        || bytes[i] == 'e'
                        || bytes[i] == 'E'
                        || ((bytes[i] == '+' || bytes[i] == '-')
                            && matches!(bytes[i - 1], 'e' | 'E')))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let value = text.parse::<f64>().map_err(|_| QasmError::Unexpected {
                    line,
                    found: format!("'{text}'"),
                    expected: "a number".into(),
                })?;
                toks.push((line, Tok::Number(value)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push((line, Tok::Ident(bytes[start..i].iter().collect())));
            }
            other => {
                return Err(QasmError::Unexpected {
                    line,
                    found: format!("'{other}'"),
                    expected: "a token".into(),
                })
            }
        }
    }
    Ok(toks)
}

#[derive(Debug)]
struct Register {
    name: String,
    offset: usize,
    size: usize,
}

#[derive(Debug)]
struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    qregs: Vec<Register>,
    cregs: Vec<Register>,
    declared_gates: Vec<String>,
}

/// A parsed qubit argument: one qubit or a whole register (broadcast).
enum QubitArg {
    One(usize),
    Whole(usize, usize), // offset, size
}

impl Parser {
    fn new(source: &str) -> Result<Self, QasmError> {
        Ok(Parser {
            toks: tokenize(source)?,
            pos: 0,
            qregs: Vec::new(),
            cregs: Vec::new(),
            declared_gates: Vec::new(),
        })
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn unexpected(&self, expected: &str) -> QasmError {
        QasmError::Unexpected {
            line: self.line(),
            found: self
                .toks
                .get(self.pos)
                .map_or("end of file".into(), |(_, t)| t.to_string()),
            expected: expected.into(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), QasmError> {
        match self.peek() {
            Some(Tok::Punct(p)) if *p == c => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.unexpected(&format!("'{c}'"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, QasmError> {
        match self.peek() {
            Some(Tok::Ident(_)) => {
                let Some(Tok::Ident(s)) = self.next() else {
                    unreachable!()
                };
                Ok(s)
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn run(mut self) -> Result<Circuit, QasmError> {
        self.header()?;
        let mut instructions: Vec<Instruction> = Vec::new();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(word) => match word.as_str() {
                    "include" => {
                        self.pos += 1;
                        match self.next() {
                            Some(Tok::Str(_)) => self.expect_punct(';')?,
                            _ => return Err(self.unexpected("an include path string")),
                        }
                    }
                    "qreg" => self.register_decl(true)?,
                    "creg" => self.register_decl(false)?,
                    "gate" => self.skip_gate_decl()?,
                    "opaque" => self.skip_until_semicolon()?,
                    "barrier" => self.skip_until_semicolon()?,
                    "if" => {
                        return Err(QasmError::Unexpected {
                            line: self.line(),
                            found: "'if'".into(),
                            expected: "an unconditional statement (classical control is \
                                       not supported)"
                                .into(),
                        })
                    }
                    "measure" => {
                        self.pos += 1;
                        self.measure_stmt(&mut instructions)?;
                    }
                    _ => self.gate_application(&mut instructions)?,
                },
                _ => return Err(self.unexpected("a statement")),
            }
        }
        let num_qubits = self.qregs.iter().map(|r| r.size).sum();
        Circuit::from_instructions(num_qubits, instructions).map_err(|e| QasmError::BadReference {
            line: 0,
            reference: e.to_string(),
        })
    }

    fn header(&mut self) -> Result<(), QasmError> {
        match self.next() {
            Some(Tok::Ident(w)) if w == "OPENQASM" => {}
            other => {
                return Err(QasmError::UnsupportedVersion {
                    found: other.map_or("empty file".into(), |t| t.to_string()),
                })
            }
        }
        match self.next() {
            Some(Tok::Number(v)) if (v - 2.0).abs() < 0.999 => {}
            other => {
                return Err(QasmError::UnsupportedVersion {
                    found: other.map_or("end of file".into(), |t| t.to_string()),
                })
            }
        }
        self.expect_punct(';')
    }

    fn register_decl(&mut self, quantum: bool) -> Result<(), QasmError> {
        self.pos += 1; // qreg / creg
        let name = self.expect_ident()?;
        self.expect_punct('[')?;
        let size = match self.next() {
            Some(Tok::Number(v)) if v >= 1.0 && v.fract() == 0.0 => v as usize,
            _ => return Err(self.unexpected("a positive register size")),
        };
        self.expect_punct(']')?;
        self.expect_punct(';')?;
        let regs = if quantum {
            &mut self.qregs
        } else {
            &mut self.cregs
        };
        let offset = regs.iter().map(|r| r.size).sum();
        regs.push(Register { name, offset, size });
        Ok(())
    }

    fn skip_gate_decl(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // gate
        let name = self.expect_ident()?;
        self.declared_gates.push(name);
        let mut depth = 0usize;
        loop {
            match self.next() {
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.unexpected("'}' closing the gate body")),
            }
        }
    }

    fn skip_until_semicolon(&mut self) -> Result<(), QasmError> {
        loop {
            match self.next() {
                Some(Tok::Punct(';')) => return Ok(()),
                Some(_) => {}
                None => return Err(self.unexpected("';'")),
            }
        }
    }

    fn measure_stmt(&mut self, out: &mut Vec<Instruction>) -> Result<(), QasmError> {
        let qarg = self.qubit_arg()?;
        match self.next() {
            Some(Tok::Arrow) => {}
            _ => return Err(self.unexpected("'->'")),
        }
        // Classical target: validate the reference, then discard (the IR
        // keeps measurement results implicitly aligned with qubits).
        let cname = self.expect_ident()?;
        let creg =
            self.cregs
                .iter()
                .find(|r| r.name == cname)
                .ok_or_else(|| QasmError::BadReference {
                    line: self.line(),
                    reference: format!("classical register '{cname}'"),
                })?;
        let creg_size = creg.size;
        if let Some(Tok::Punct('[')) = self.peek() {
            self.pos += 1;
            match self.next() {
                Some(Tok::Number(v)) if v.fract() == 0.0 && (v as usize) < creg_size => {}
                _ => {
                    return Err(QasmError::BadReference {
                        line: self.line(),
                        reference: format!("bit index into '{cname}[{creg_size}]'"),
                    })
                }
            }
            self.expect_punct(']')?;
        }
        self.expect_punct(';')?;
        match qarg {
            QubitArg::One(q) => {
                out.push(Instruction::new(Gate::Measure, &[Qubit::new(q)]));
            }
            QubitArg::Whole(offset, size) => {
                for q in offset..offset + size {
                    out.push(Instruction::new(Gate::Measure, &[Qubit::new(q)]));
                }
            }
        }
        Ok(())
    }

    fn gate_application(&mut self, out: &mut Vec<Instruction>) -> Result<(), QasmError> {
        let line = self.line();
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if let Some(Tok::Punct('(')) = self.peek() {
            self.pos += 1;
            if self.peek() != Some(&Tok::Punct(')')) {
                loop {
                    params.push(self.expression()?);
                    match self.peek() {
                        Some(Tok::Punct(',')) => self.pos += 1,
                        _ => break,
                    }
                }
            }
            self.expect_punct(')')?;
        }
        let mut args = vec![self.qubit_arg()?];
        while let Some(Tok::Punct(',')) = self.peek() {
            self.pos += 1;
            args.push(self.qubit_arg()?);
        }
        self.expect_punct(';')?;

        let gate = build_gate(&name, &params, args.len(), line, &self.declared_gates)?;
        match (&args[..], gate.arity()) {
            ([QubitArg::Whole(offset, size)], 1) => {
                for q in *offset..*offset + *size {
                    out.push(Instruction::new(gate, &[Qubit::new(q)]));
                }
                Ok(())
            }
            _ => {
                let mut qubits = Vec::with_capacity(args.len());
                for a in &args {
                    match a {
                        QubitArg::One(q) => qubits.push(Qubit::new(*q)),
                        QubitArg::Whole(..) => {
                            return Err(QasmError::Unexpected {
                                line,
                                found: "a whole-register argument".into(),
                                expected: "indexed qubits for a multi-qubit gate".into(),
                            })
                        }
                    }
                }
                if qubits.len() != gate.arity() {
                    return Err(QasmError::WrongArity {
                        line,
                        name,
                        expected: gate.arity(),
                        found: qubits.len(),
                    });
                }
                out.push(Instruction::new(gate, &qubits));
                Ok(())
            }
        }
    }

    fn qubit_arg(&mut self) -> Result<QubitArg, QasmError> {
        let name = self.expect_ident()?;
        let reg =
            self.qregs
                .iter()
                .find(|r| r.name == name)
                .ok_or_else(|| QasmError::BadReference {
                    line: self.line(),
                    reference: format!("quantum register '{name}'"),
                })?;
        let (offset, size) = (reg.offset, reg.size);
        if let Some(Tok::Punct('[')) = self.peek() {
            self.pos += 1;
            let idx = match self.next() {
                Some(Tok::Number(v)) if v.fract() == 0.0 && (v as usize) < size => v as usize,
                _ => {
                    return Err(QasmError::BadReference {
                        line: self.line(),
                        reference: format!("qubit index into '{name}[{size}]'"),
                    })
                }
            };
            self.expect_punct(']')?;
            Ok(QubitArg::One(offset + idx))
        } else {
            Ok(QubitArg::Whole(offset, size))
        }
    }

    /// Parses a parameter expression: `+ - * /`, unary minus, parentheses,
    /// numbers, and `pi`.
    fn expression(&mut self) -> Result<f64, QasmError> {
        let mut value = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Punct('+')) => {
                    self.pos += 1;
                    value += self.term()?;
                }
                Some(Tok::Punct('-')) => {
                    self.pos += 1;
                    value -= self.term()?;
                }
                _ => return Ok(value),
            }
        }
    }

    fn term(&mut self) -> Result<f64, QasmError> {
        let mut value = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Punct('*')) => {
                    self.pos += 1;
                    value *= self.factor()?;
                }
                Some(Tok::Punct('/')) => {
                    self.pos += 1;
                    value /= self.factor()?;
                }
                _ => return Ok(value),
            }
        }
    }

    fn factor(&mut self) -> Result<f64, QasmError> {
        match self.next() {
            Some(Tok::Number(v)) => Ok(v),
            Some(Tok::Ident(w)) if w == "pi" => Ok(PI),
            Some(Tok::Punct('-')) => Ok(-self.factor()?),
            Some(Tok::Punct('(')) => {
                let v = self.expression()?;
                self.expect_punct(')')?;
                Ok(v)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.unexpected("a parameter expression"))
            }
        }
    }
}

/// Maps a QASM gate name and parameters to an IR gate.
fn build_gate(
    name: &str,
    params: &[f64],
    _args: usize,
    line: usize,
    declared: &[String],
) -> Result<Gate, QasmError> {
    let wrong_params = |expected: usize| QasmError::WrongArity {
        line,
        name: name.to_string(),
        expected,
        found: params.len(),
    };
    let fixed = |gate: Gate| {
        if params.is_empty() {
            Ok(gate)
        } else {
            Err(wrong_params(0))
        }
    };
    let one_param = |f: fn(f64) -> Gate| {
        if params.len() == 1 {
            Ok(f(params[0]))
        } else {
            Err(wrong_params(1))
        }
    };
    match name {
        "id" => fixed(Gate::I),
        "h" => fixed(Gate::H),
        "x" => fixed(Gate::X),
        "y" => fixed(Gate::Y),
        "z" => fixed(Gate::Z),
        "s" => fixed(Gate::S),
        "sdg" => fixed(Gate::Sdg),
        "t" => fixed(Gate::T),
        "tdg" => fixed(Gate::Tdg),
        "sx" => fixed(Gate::Sx),
        "sxdg" => fixed(Gate::Sxdg),
        "rx" => one_param(Gate::Rx),
        "ry" => one_param(Gate::Ry),
        "rz" => one_param(Gate::Rz),
        "u1" | "p" => one_param(Gate::U1),
        "u2" => {
            if params.len() == 2 {
                Ok(Gate::U2(params[0], params[1]))
            } else {
                Err(wrong_params(2))
            }
        }
        "u3" | "u" => {
            if params.len() == 3 {
                Ok(Gate::U3(params[0], params[1], params[2]))
            } else {
                Err(wrong_params(3))
            }
        }
        "xpow" => one_param(Gate::Xpow),
        "cxpow" => one_param(Gate::Cxpow),
        "cx" | "CX" => fixed(Gate::Cx),
        "cz" => fixed(Gate::Cz),
        "cp" | "cu1" => one_param(Gate::Cp),
        "swap" => fixed(Gate::Swap),
        "ccx" => fixed(Gate::Ccx),
        "ccz" => fixed(Gate::Ccz),
        "cswap" => fixed(Gate::Cswap),
        _ => Err(QasmError::UnknownGate {
            line,
            name: if declared.iter().any(|d| d == name) {
                format!("{name} (declared in-file, but custom gate bodies are not expanded)")
            } else {
                name.to_string()
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[2];
            h q[0];
            cx q[0], q[1];
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.instructions()[0].gate(), Gate::H);
        assert_eq!(c.instructions()[1].gate(), Gate::Cx);
    }

    #[test]
    fn flattens_multiple_registers() {
        let src = "OPENQASM 2.0; qreg a[2]; qreg b[3]; cx a[1], b[0];";
        let c = parse(src).unwrap();
        assert_eq!(c.num_qubits(), 5);
        let i = c.instructions()[0];
        assert_eq!(i.qubit(0).index(), 1);
        assert_eq!(i.qubit(1).index(), 2);
    }

    #[test]
    fn broadcasts_single_qubit_gates_over_registers() {
        let src = "OPENQASM 2.0; qreg q[3]; h q;";
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|i| i.gate() == Gate::H));
    }

    #[test]
    fn broadcast_measure() {
        let src = "OPENQASM 2.0; qreg q[2]; creg c[2]; measure q -> c;";
        let c = parse(src).unwrap();
        assert_eq!(c.counts().measure, 2);
    }

    #[test]
    fn evaluates_parameter_expressions() {
        let src = "OPENQASM 2.0; qreg q[1]; rz(pi/2) q[0]; rz(-pi) q[0]; rz(2*(1+1)) q[0];";
        let c = parse(src).unwrap();
        let angles: Vec<f64> = c
            .iter()
            .map(|i| match i.gate() {
                Gate::Rz(a) => a,
                _ => unreachable!(),
            })
            .collect();
        assert!((angles[0] - PI / 2.0).abs() < 1e-15);
        assert!((angles[1] + PI).abs() < 1e-15);
        assert!((angles[2] - 4.0).abs() < 1e-15);
    }

    #[test]
    fn skips_gate_declarations_and_barriers() {
        let src = r#"
            OPENQASM 2.0;
            gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
            qreg q[3];
            barrier q;
            ccx q[0], q[1], q[2];
        "#;
        let c = parse(src).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.instructions()[0].gate(), Gate::Ccx);
    }

    #[test]
    fn rejects_unknown_gates_and_undeclared_custom_bodies() {
        let src = "OPENQASM 2.0; qreg q[1]; frob q[0];";
        assert!(matches!(
            parse(src).unwrap_err(),
            QasmError::UnknownGate { name, .. } if name == "frob"
        ));
        let src = "OPENQASM 2.0; gate foo a { h a; } qreg q[1]; foo q[0];";
        assert!(matches!(
            parse(src).unwrap_err(),
            QasmError::UnknownGate { name, .. } if name.starts_with("foo")
        ));
    }

    #[test]
    fn rejects_bad_version() {
        assert!(matches!(
            parse("OPENQASM 3.0; qreg q[1];").unwrap_err(),
            QasmError::UnsupportedVersion { .. }
        ));
        assert!(matches!(
            parse("qreg q[1];").unwrap_err(),
            QasmError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn rejects_out_of_range_indices() {
        assert!(matches!(
            parse("OPENQASM 2.0; qreg q[2]; h q[5];").unwrap_err(),
            QasmError::BadReference { .. }
        ));
        assert!(matches!(
            parse("OPENQASM 2.0; qreg q[2]; cx q[0], r[0];").unwrap_err(),
            QasmError::BadReference { .. }
        ));
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(matches!(
            parse("OPENQASM 2.0; qreg q[3]; cx q[0], q[1], q[2];").unwrap_err(),
            QasmError::WrongArity { .. }
        ));
        assert!(matches!(
            parse("OPENQASM 2.0; qreg q[1]; rz q[0];").unwrap_err(),
            QasmError::WrongArity { .. }
        ));
    }

    #[test]
    fn rejects_classical_control() {
        let src = "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c == 1) x q[0];";
        assert!(parse(src).is_err());
    }

    #[test]
    fn measure_validates_classical_target() {
        let src = "OPENQASM 2.0; qreg q[1]; measure q[0] -> c[0];";
        assert!(matches!(
            parse(src).unwrap_err(),
            QasmError::BadReference { .. }
        ));
    }
}
