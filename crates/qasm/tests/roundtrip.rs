//! Round-trip tests: `parse(emit(c))` must reproduce `c` exactly for the
//! whole benchmark suite and for randomized circuits over the full gate
//! set.

use proptest::prelude::*;
use trios_benchmarks::{Benchmark, ExtendedBenchmark};
use trios_ir::{Circuit, Gate};
use trios_qasm::{emit, parse};

/// Structural equality: same width, same gates (names + params bitwise,
/// since the emitter prints round-trip-exact digits), same operands.
fn assert_round_trip(original: &Circuit) {
    let text = emit(original);
    let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
    assert_eq!(back.num_qubits(), original.num_qubits());
    assert_eq!(back.len(), original.len(), "{text}");
    for (a, b) in original.iter().zip(back.iter()) {
        assert_eq!(a.gate(), b.gate());
        assert_eq!(a.qubits(), b.qubits());
    }
}

#[test]
fn paper_suite_round_trips() {
    for b in Benchmark::ALL {
        assert_round_trip(&b.build());
    }
}

#[test]
fn extended_suite_round_trips() {
    for b in ExtendedBenchmark::ALL {
        assert_round_trip(&b.build());
    }
}

#[test]
fn measured_circuit_round_trips() {
    let mut c = Benchmark::CnxInplace4.build();
    c.measure_all();
    assert_round_trip(&c);
}

#[test]
fn all_gate_kinds_round_trip() {
    let mut c = Circuit::new(4);
    c.h(0)
        .x(1)
        .y(2)
        .z(3)
        .s(0)
        .sdg(1)
        .t(2)
        .tdg(3)
        .sx(0)
        .rx(0.25, 1)
        .ry(-1.5, 2)
        .rz(3.25, 3)
        .u1(0.125, 0)
        .u2(0.5, -0.5, 1)
        .u3(1.0, 2.0, 3.0, 2)
        .xpow(0.31, 3)
        .cxpow(0.5, 0, 1)
        .cx(1, 2)
        .cz(2, 3)
        .cp(0.75, 0, 3)
        .swap(1, 3)
        .ccx(0, 1, 2)
        .ccz(1, 2, 3)
        .cswap(0, 2, 3)
        .measure(0)
        .measure(3);
    c.apply(Gate::Sxdg, &[1]);
    c.apply(Gate::I, &[2]);
    assert_round_trip(&c);
}

/// Strategy for an arbitrary instruction on `n` qubits.
fn instruction_strategy(n: usize) -> impl Strategy<Value = (u8, Vec<usize>, f64)> {
    (
        0u8..16,
        proptest::sample::subsequence((0..n).collect::<Vec<_>>(), 3),
        -10.0f64..10.0,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_never_panics_on_garbage(source in "\\PC{0,200}") {
        // Arbitrary printable input must produce Ok or Err — never a panic.
        let _ = parse(&source);
    }

    #[test]
    fn parser_never_panics_on_qasm_like_garbage(
        body in proptest::collection::vec(
            proptest::sample::select(vec![
                "qreg q[2];", "creg c[2];", "h q[0];", "cx q[0], q[1];",
                "measure q -> c;", "rz(pi/2) q[1];", "barrier q;",
                "qreg q[0];", "h q[9];", "cx q[0];", "bogus q[0];",
                "gate f a { h a; }", "h q[0]", "rz() q[0];", "u3(1,2) q[0];",
            ]),
            0..12,
        )
    ) {
        let source = format!("OPENQASM 2.0;\n{}", body.join("\n"));
        let _ = parse(&source);
    }

    #[test]
    fn random_circuits_round_trip(
        instrs in proptest::collection::vec(instruction_strategy(6), 1..60)
    ) {
        let mut c = Circuit::new(6);
        for (kind, qs, angle) in instrs {
            if qs.len() < 3 {
                continue;
            }
            let (a, b, t) = (qs[0], qs[1], qs[2]);
            match kind % 16 {
                0 => c.h(a),
                1 => c.t(a),
                2 => c.rz(angle, a),
                3 => c.rx(angle, b),
                4 => c.u3(angle, -angle, 0.5 * angle, a),
                5 => c.cx(a, b),
                6 => c.cz(a, t),
                7 => c.cp(angle, b, t),
                8 => c.swap(a, b),
                9 => c.ccx(a, b, t),
                10 => c.ccz(a, b, t),
                11 => c.cswap(a, b, t),
                12 => c.xpow(angle / 10.0, a),
                13 => c.sx(b),
                14 => c.u2(angle, -angle, t),
                _ => c.measure(a),
            };
        }
        assert_round_trip(&c);
    }
}
