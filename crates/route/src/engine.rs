//! [`RoutingEngine`]: the shared routing core every
//! [`RoutingStrategy`](crate::RoutingStrategy) builds on.
//!
//! The engine owns the machinery that used to live inside the two
//! hard-coded routers: layout bookkeeping, SWAP emission, direction
//! fixing, bridge rewriting, windowed-lookahead stepping, trio gathering
//! with gather-distance accounting, and trio-event recording. Strategies
//! decide *policy* (which gates to allow, which metric and lookahead to
//! use); the engine supplies the *mechanism* and keeps the
//! [`RoutingTrace`] honest.

use crate::strategy::RoutingTrace;
use crate::{
    DirectionPolicy, Layout, LookaheadConfig, PathMetric, RouteError, RoutedCircuit, RouterOptions,
    TrioEvent,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use trios_ir::{Circuit, Gate, Instruction, Qubit};
use trios_passes::{DecompositionPlan, DecompositionStrategy, TrioPlacement};
use trios_topology::{Topology, TripleShape};

/// The shared routing core: a live layout, an output circuit under
/// construction, and every primitive a routing strategy needs (SWAP
/// emission, shortest paths under the configured metric, adjacency
/// fixing, bridging, trio gathering).
///
/// Custom strategies drive it directly:
///
/// ```
/// use trios_ir::Circuit;
/// use trios_route::{Layout, RouterOptions, RoutingEngine, RoutingTrace};
/// use trios_topology::line;
///
/// let mut program = Circuit::new(3);
/// program.cx(0, 2);
/// let device = line(3);
/// let options = RouterOptions::deterministic();
/// let mut trace = RoutingTrace::new();
/// let engine = RoutingEngine::new(&device, Layout::trivial(3, 3), &options, &program, &mut trace)?;
/// let routed = engine.run(&program, false)?;
/// assert_eq!(routed.swap_count, 1);
/// # Ok::<(), trios_route::RouteError>(())
/// ```
pub struct RoutingEngine<'a> {
    topo: &'a Topology,
    opts: &'a RouterOptions,
    trace: &'a mut RoutingTrace,
    layout: Layout,
    out: Circuit,
    swap_count: usize,
    rng: StdRng,
    weights: Option<HashMap<(usize, usize), f64>>,
    trio_events: Vec<TrioEvent>,
    decomposer: Arc<dyn DecompositionStrategy>,
    plan: DecompositionPlan,
}

impl std::fmt::Debug for RoutingEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingEngine")
            .field("layout", &self.layout)
            .field("swap_count", &self.swap_count)
            .field("emitted", &self.out.len())
            .finish()
    }
}

impl<'a> RoutingEngine<'a> {
    /// Validates the job and builds an engine over `topo` starting from
    /// `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::CircuitTooWide`] if the circuit does not fit
    /// the device, or [`RouteError::InvalidLayout`] if the layout's shape
    /// disagrees with the circuit/device.
    pub fn new(
        topo: &'a Topology,
        initial: Layout,
        opts: &'a RouterOptions,
        circuit: &Circuit,
        trace: &'a mut RoutingTrace,
    ) -> Result<Self, RouteError> {
        if circuit.num_qubits() > topo.num_qubits() {
            return Err(RouteError::CircuitTooWide {
                logical: circuit.num_qubits(),
                physical: topo.num_qubits(),
            });
        }
        if initial.num_logical() != circuit.num_qubits()
            || initial.num_physical() != topo.num_qubits()
        {
            return Err(RouteError::InvalidLayout {
                reason: format!(
                    "layout is {}→{} but circuit/device are {}→{}",
                    initial.num_logical(),
                    initial.num_physical(),
                    circuit.num_qubits(),
                    topo.num_qubits()
                ),
            });
        }
        let weights = match &opts.metric {
            PathMetric::Hops => None,
            PathMetric::EdgeWeights(w) => {
                let mut map = HashMap::new();
                for (edge, weight) in topo.edges().iter().zip(w) {
                    map.insert(*edge, *weight);
                }
                Some(map)
            }
        };
        let decomposer = opts
            .decomposer
            .resolve()
            .map_err(|name| RouteError::InvalidOptions {
                reason: format!("unknown decomposition strategy '{name}'"),
            })?;
        if opts.lower_toffoli && !decomposer.executable() {
            return Err(RouteError::InvalidOptions {
                reason: format!(
                    "decomposition strategy '{}' is cost-model-only and cannot emit gates",
                    decomposer.name()
                ),
            });
        }
        // The plan is computed lazily in `run` (this constructor does not
        // know which circuit will be routed).
        let plan = DecompositionPlan::new();
        Ok(RoutingEngine {
            topo,
            opts,
            trace,
            layout: initial,
            out: Circuit::with_name(topo.num_qubits(), circuit.name().to_string()),
            swap_count: 0,
            rng: StdRng::seed_from_u64(opts.seed),
            weights,
            trio_events: Vec::new(),
            decomposer,
            plan,
        })
    }

    /// The current logical→physical layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The device being routed onto.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The options this engine was built with.
    pub fn options(&self) -> &RouterOptions {
        self.opts
    }

    /// SWAPs emitted so far.
    pub fn swap_count(&self) -> usize {
        self.swap_count
    }

    /// Drives the standard routing loop over `circuit`: 1-qubit gates are
    /// re-mapped and emitted, 2-qubit gates are bridged or made adjacent
    /// (with lookahead when configured), and 3-qubit gates are gathered as
    /// trios when `allow_ccx` is set (rejected otherwise — the
    /// decompose-first contract).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::UnsupportedGate`] for a 3-qubit gate when
    /// `allow_ccx` is `false`, or [`RouteError::Disconnected`] if
    /// interacting qubits cannot be joined.
    pub fn run(mut self, circuit: &Circuit, allow_ccx: bool) -> Result<RoutedCircuit, RouteError> {
        let initial_layout = self.layout.clone();
        // Per-circuit decomposition decisions (e.g. relative-phase's
        // compute/uncompute pairing) are computed over the logical circuit
        // before any gate moves.
        self.plan = self.decomposer.plan(circuit);
        let mut queue: VecDeque<Instruction> = circuit.iter().copied().collect();
        let mut index = 0usize;
        while let Some(instr) = queue.pop_front() {
            match instr.qubits().len() {
                1 => self.emit_mapped(&instr),
                2 => {
                    let (la, lb) = (instr.qubit(0).index(), instr.qubit(1).index());
                    if self.try_bridge(&instr, la, lb) {
                        index += 1;
                        continue;
                    }
                    match self.opts.lookahead {
                        Some(cfg) => self.make_adjacent_lookahead(la, lb, &queue, cfg)?,
                        None => self.make_adjacent(la, lb)?,
                    }
                    self.emit_mapped(&instr);
                }
                3 => {
                    if !allow_ccx {
                        return Err(RouteError::UnsupportedGate {
                            gate: instr.gate().name(),
                            instruction: index,
                        });
                    }
                    let expansion = self.gather_trio(&instr)?;
                    for sub in expansion.into_iter().rev() {
                        queue.push_front(sub);
                    }
                }
                _ => unreachable!("IR gates have arity 1..=3"),
            }
            index += 1;
        }
        self.trace
            .trio_events
            .extend(self.trio_events.iter().copied());
        Ok(RoutedCircuit {
            circuit: self.out,
            initial_layout,
            final_layout: self.layout,
            swap_count: self.swap_count,
            trio_events: self.trio_events,
        })
    }

    /// Emits an instruction with its logical operands mapped to their
    /// current physical homes.
    pub fn emit_mapped(&mut self, instr: &Instruction) {
        let mapped = instr.map_qubits(|q| Qubit::new(self.layout.physical(q.index())));
        self.out.push(mapped);
    }

    /// Emits a SWAP on the coupling edge `p1`–`p2` and updates the layout
    /// and trace accordingly.
    pub fn emit_swap(&mut self, p1: usize, p2: usize) {
        debug_assert!(self.topo.are_adjacent(p1, p2), "swap on non-edge {p1}-{p2}");
        self.out.push(Instruction::new(
            Gate::Swap,
            &[Qubit::new(p1), Qubit::new(p2)],
        ));
        self.layout.swap_physical(p1, p2);
        self.swap_count += 1;
        self.trace.swaps += 1;
    }

    /// Shortest physical path under the configured metric.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Disconnected`] if no path exists.
    pub fn path(&self, a: usize, b: usize) -> Result<Vec<usize>, RouteError> {
        let path = match &self.weights {
            None => self.topo.shortest_path(a, b),
            Some(w) => self
                .topo
                .shortest_path_weighted(a, b, &|x, y| *w.get(&(x.min(y), x.max(y))).unwrap_or(&1.0))
                .map(|(p, _)| p),
        };
        path.ok_or(RouteError::Disconnected { a, b })
    }

    /// Inserts SWAPs until logical qubits `la` and `lb` are physically
    /// adjacent, following the configured direction policy.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Disconnected`] if the pair cannot be joined.
    pub fn make_adjacent(&mut self, la: usize, lb: usize) -> Result<(), RouteError> {
        let pa = self.layout.physical(la);
        let pb = self.layout.physical(lb);
        if self.topo.are_adjacent(pa, pb) {
            return Ok(());
        }
        let path = self.path(pa, pb)?;
        let hops = path.len() - 2; // SWAPs needed
        let first_moves = match self.opts.direction {
            DirectionPolicy::MoveFirst => hops,
            DirectionPolicy::MoveSecond => 0,
            DirectionPolicy::Stochastic => {
                if self.rng.gen_bool(0.5) {
                    hops
                } else {
                    0
                }
            }
            DirectionPolicy::MeetInMiddle => hops / 2,
        };
        // First operand walks forward to path[first_moves] …
        for i in 0..first_moves {
            self.emit_swap(path[i], path[i + 1]);
        }
        // … second operand walks backward to path[first_moves + 1].
        for i in ((first_moves + 2)..path.len()).rev() {
            self.emit_swap(path[i], path[i - 1]);
        }
        debug_assert!(self
            .topo
            .are_adjacent(self.layout.physical(la), self.layout.physical(lb)));
        Ok(())
    }

    /// Bridge shortcut: a CNOT whose operands sit at distance exactly 2 is
    /// emitted as the 4-CNOT bridge
    /// `CX(a,m)·CX(m,b)·CX(a,m)·CX(m,b) = CX(a,b)` over the middle qubit
    /// `m`, leaving the layout untouched. Returns `true` if it applied.
    ///
    /// Only plain CNOTs bridge; other two-qubit gates fall through to SWAP
    /// routing.
    pub fn try_bridge(&mut self, instr: &Instruction, la: usize, lb: usize) -> bool {
        if !self.opts.bridge || instr.gate() != Gate::Cx {
            return false;
        }
        let pa = self.layout.physical(la);
        let pb = self.layout.physical(lb);
        if self.topo.distance(pa, pb) != Some(2) {
            return false;
        }
        // The middle must come from the *hop*-shortest path: a weighted
        // metric can prefer a longer detour whose second node is not a
        // common neighbor, and a bridge over such an "m" would emit CNOTs
        // on non-edges. (The hop path at distance 2 always has length 3.)
        let m = match self.topo.shortest_path(pa, pb) {
            Some(path) if path.len() == 3 => path[1],
            _ => return false,
        };
        debug_assert!(self.topo.are_adjacent(pa, m) && self.topo.are_adjacent(m, pb));
        let q = Qubit::new;
        for _ in 0..2 {
            self.out.push(Instruction::new(Gate::Cx, &[q(pa), q(m)]));
            self.out.push(Instruction::new(Gate::Cx, &[q(m), q(pb)]));
        }
        self.trace.bridges += 1;
        true
    }

    /// Lookahead variant of [`RoutingEngine::make_adjacent`]: one SWAP at
    /// a time, each chosen among the moves that strictly shrink the front
    /// gate's distance, scored by a decayed sum of upcoming gate distances
    /// (the look-ahead schemes the paper cites as prior work in §3).
    ///
    /// Lookahead scoring is hop-based even under a noise-aware
    /// [`PathMetric`]; the metric still governs committed shortest-path
    /// walks elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Disconnected`] if the pair cannot be joined.
    pub fn make_adjacent_lookahead(
        &mut self,
        la: usize,
        lb: usize,
        upcoming: &VecDeque<Instruction>,
        cfg: LookaheadConfig,
    ) -> Result<(), RouteError> {
        loop {
            let pa = self.layout.physical(la);
            let pb = self.layout.physical(lb);
            if self.topo.are_adjacent(pa, pb) {
                return Ok(());
            }
            let d0 = self
                .topo
                .distance(pa, pb)
                .ok_or(RouteError::Disconnected { a: pa, b: pb })?;

            // Candidates: swaps on edges incident to either endpoint that
            // bring the pair strictly closer. Moving one endpoint along any
            // shortest path qualifies, so the set is never empty.
            let mut best: Option<(f64, (usize, usize))> = None;
            for (end, other) in [(pa, pb), (pb, pa)] {
                for n in self.topo.neighbors(end) {
                    let d1 = match self.topo.distance(n, other) {
                        Some(d) => d,
                        None => continue,
                    };
                    if d1 + 1 != d0 {
                        continue;
                    }
                    // Score the candidate by applying the swap in place and
                    // undoing it: `swap_physical` is O(1) both ways, where
                    // cloning the layout per candidate is O(n) — the
                    // difference between routing kiloqubit devices and not.
                    self.layout.swap_physical(end, n);
                    let window = self.window_cost(&self.layout, upcoming, cfg);
                    self.layout.swap_physical(end, n);
                    let cost = d1 as f64 + cfg.weight * window;
                    let edge = (end.min(n), end.max(n));
                    let better = match best {
                        None => true,
                        Some((bc, be)) => {
                            cost < bc - 1e-9 || ((cost - bc).abs() <= 1e-9 && edge < be)
                        }
                    };
                    if better {
                        best = Some((cost, edge));
                    }
                }
            }
            let (_, (p1, p2)) = best.expect("a distance-decreasing swap always exists");
            self.emit_swap(p1, p2);
            self.trace.lookahead_swaps += 1;
        }
    }

    /// Decayed sum of the physical distances of the next `cfg.window`
    /// multi-qubit gates under `layout` (trios cost their gather distance).
    ///
    /// A disconnected pair or trio scores a large finite penalty — twice
    /// the device qubit count, which strictly exceeds any achievable
    /// per-gate cost (pair distances cap at `n − 1`; a trio's gather
    /// distance sums two of them, capping at `2n − 4` after the
    /// already-connected discount) — so unreachable placements can never
    /// look *cheaper* than reachable ones to lookahead scoring. (They
    /// used to score 0, i.e. free, via `unwrap_or(0)`.)
    pub fn window_cost(
        &self,
        layout: &Layout,
        upcoming: &VecDeque<Instruction>,
        cfg: LookaheadConfig,
    ) -> f64 {
        let disconnected = 2 * self.topo.num_qubits();
        let mut cost = 0.0;
        let mut weight = 1.0;
        let mut counted = 0usize;
        for instr in upcoming {
            let qs = instr.qubits();
            let d = match qs.len() {
                2 => {
                    let a = layout.physical(qs[0].index());
                    let b = layout.physical(qs[1].index());
                    match self.topo.distance(a, b) {
                        Some(d) => d.saturating_sub(1),
                        None => disconnected,
                    }
                }
                3 => {
                    let a = layout.physical(qs[0].index());
                    let b = layout.physical(qs[1].index());
                    let c = layout.physical(qs[2].index());
                    match self.topo.triple_distance(a, b, c) {
                        Some(d) => d.saturating_sub(2),
                        None => disconnected,
                    }
                }
                _ => continue,
            };
            cost += weight * d as f64;
            weight *= cfg.decay;
            counted += 1;
            if counted >= cfg.window {
                break;
            }
        }
        cost
    }

    /// The Trios gather step (paper §4): pick the operand with the minimal
    /// summed distance as the destination, route the other two to be
    /// adjacent to it (with the overlap refinement), then hand back the
    /// placement-appropriate decomposition — or leave the three-qubit gate
    /// intact when `lower_toffoli` is off.
    ///
    /// Handles the full three-qubit gate set (the paper's §4 extension):
    /// `ccx` and `ccz` decompose in place; `cswap` expands into its
    /// CX-conjugated Toffoli, whose inner `ccx` re-enters this gather (by
    /// then a no-op, the trio being connected).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Disconnected`] if the trio cannot be joined.
    pub fn gather_trio(&mut self, instr: &Instruction) -> Result<Vec<Instruction>, RouteError> {
        let logical: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
        let phys: Vec<usize> = logical.iter().map(|&l| self.layout.physical(l)).collect();
        let gather_distance = self
            .topo
            .triple_distance(phys[0], phys[1], phys[2])
            .map(|d| d.saturating_sub(2)) // 2 = already connected
            .unwrap_or(0);
        let swaps_before = self.swap_count;

        if self.topo.triple_shape(phys[0], phys[1], phys[2]) == TripleShape::Disconnected {
            let dest_phys = match instr.gate() {
                // Fredkin: gather around one of the *swapped* operands so
                // the conjugating CNOT pair lands on a coupling edge.
                Gate::Cswap => self.gather_destination(&phys[1..], &phys)?,
                _ => self.gather_destination(&phys, &phys)?,
            };
            let dest_logical = self
                .layout
                .logical(dest_phys)
                .expect("destination holds one of the trio");
            let movers: Vec<usize> = logical
                .iter()
                .copied()
                .filter(|&l| l != dest_logical)
                .collect();

            // First mover: stop on the neighbor of the destination.
            let m1 = movers[0];
            let path1 = self.path(self.layout.physical(m1), dest_phys)?;
            for i in 0..path1.len().saturating_sub(2) {
                self.emit_swap(path1[i], path1[i + 1]);
            }

            // Second mover: recompute from the updated layout. If its
            // stopping point is where the first mover now sits, stop one
            // step earlier — the first mover becomes the middle qubit
            // (saves one SWAP; paper §4).
            let m2 = movers[1];
            let path2 = self.path(self.layout.physical(m2), dest_phys)?;
            let mut swaps = path2.len().saturating_sub(2);
            if swaps > 0 && path2[path2.len() - 2] == self.layout.physical(m1) {
                swaps -= 1;
            }
            for i in 0..swaps {
                self.emit_swap(path2[i], path2[i + 1]);
            }
        }

        let shape = self.topo.triple_shape(
            self.layout.physical(logical[0]),
            self.layout.physical(logical[1]),
            self.layout.physical(logical[2]),
        );
        debug_assert_ne!(
            shape,
            TripleShape::Disconnected,
            "gather must produce a line or triangle"
        );
        self.trio_events.push(TrioEvent {
            gate: instr.gate(),
            gather_distance,
            swaps: self.swap_count - swaps_before,
            shape,
        });

        if !self.opts.lower_toffoli {
            self.emit_mapped(instr);
            return Ok(Vec::new());
        }

        // Second decomposition pass, now placement-aware: hand the routed
        // placement to the configured strategy. The decomposition is
        // expressed over *logical* qubits and re-mapped at emission, so any
        // SWAPs inserted for non-adjacent pairs in the chosen form keep the
        // bookkeeping consistent. A `cswap` expansion's inner `ccx`
        // re-enters this gather (a no-op by then, the trio being connected)
        // and picks its own placement-appropriate form.
        let placement = match shape {
            TripleShape::Triangle => TrioPlacement::Triangle,
            TripleShape::Line { middle } => {
                let middle_logical = self
                    .layout
                    .logical(middle)
                    .expect("middle of the trio holds data");
                let middle_operand = logical
                    .iter()
                    .position(|&l| l == middle_logical)
                    .expect("middle of the trio is one of the operands");
                TrioPlacement::Line {
                    middle: middle_operand,
                }
            }
            TripleShape::Disconnected => unreachable!("checked above"),
        };
        let decomposer = Arc::clone(&self.decomposer);
        Ok(decomposer.lower(instr, placement, &mut self.plan))
    }

    /// The gather destination: the candidate with the smallest summed hop
    /// distance to the other trio members (paper §4), ties toward the
    /// earlier operand.
    fn gather_destination(
        &self,
        candidates: &[usize],
        trio: &[usize],
    ) -> Result<usize, RouteError> {
        let mut best: Option<(usize, usize)> = None;
        for &cand in candidates {
            let mut sum = 0usize;
            for &other in trio.iter().filter(|&&p| p != cand) {
                sum += self
                    .topo
                    .distance(cand, other)
                    .ok_or(RouteError::Disconnected { a: cand, b: other })?;
            }
            if best.is_none_or(|(_, d)| sum < d) {
                best = Some((cand, sum));
            }
        }
        Ok(best.expect("candidate list is non-empty").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingTrace;

    /// Two disjoint 2-qubit components: 0–1 and 2–3.
    fn split_topology() -> Topology {
        Topology::from_edges("split-2x2", 4, &[(0, 1), (2, 3)]).unwrap()
    }

    fn window_cost_of(topo: &Topology, upcoming: &VecDeque<Instruction>) -> f64 {
        let circuit = Circuit::new(topo.num_qubits());
        let options = RouterOptions::deterministic();
        let mut trace = RoutingTrace::new();
        let layout = Layout::trivial(topo.num_qubits(), topo.num_qubits());
        let engine =
            RoutingEngine::new(topo, layout.clone(), &options, &circuit, &mut trace).unwrap();
        engine.window_cost(&layout, upcoming, LookaheadConfig::default())
    }

    #[test]
    fn window_cost_penalizes_disconnected_pairs() {
        // Regression: a gate across the two components used to score 0
        // (free) via unwrap_or(0); it must score a large finite penalty,
        // strictly above any connected gate's cost.
        let topo = split_topology();
        let disconnected: VecDeque<Instruction> =
            [Instruction::new(Gate::Cx, &[Qubit::new(1), Qubit::new(2)])]
                .into_iter()
                .collect();
        let adjacent: VecDeque<Instruction> =
            [Instruction::new(Gate::Cx, &[Qubit::new(0), Qubit::new(1)])]
                .into_iter()
                .collect();
        let bad = window_cost_of(&topo, &disconnected);
        let good = window_cost_of(&topo, &adjacent);
        assert!(bad.is_finite());
        assert!(
            bad >= 2.0 * topo.num_qubits() as f64,
            "disconnected pair must outcost any reachable placement, got {bad}"
        );
        assert_eq!(good, 0.0, "an adjacent pair costs nothing");
        assert!(bad > good);
    }

    #[test]
    fn window_cost_penalizes_disconnected_trios() {
        let topo = split_topology();
        let trio: VecDeque<Instruction> = [Instruction::new(
            Gate::Ccx,
            &[Qubit::new(0), Qubit::new(1), Qubit::new(2)],
        )]
        .into_iter()
        .collect();
        let bad = window_cost_of(&topo, &trio);
        assert!(bad.is_finite());
        // 2n strictly exceeds the worst reachable trio gather cost
        // (2n − 4), so even a maximally spread *connected* trio can never
        // outcost a disconnected one.
        assert!(bad >= 2.0 * topo.num_qubits() as f64, "got {bad}");
    }

    #[test]
    fn unknown_decomposer_is_rejected_at_engine_construction() {
        let topo = trios_topology::line(3);
        let circuit = Circuit::new(3);
        let options = RouterOptions {
            decomposer: trios_passes::DecomposerHandle::named("nope"),
            ..RouterOptions::deterministic()
        };
        let mut trace = RoutingTrace::new();
        let err = match RoutingEngine::new(
            &topo,
            Layout::trivial(3, 3),
            &options,
            &circuit,
            &mut trace,
        ) {
            Err(e) => e,
            Ok(_) => panic!("unknown decomposer must not build"),
        };
        assert!(matches!(err, RouteError::InvalidOptions { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn cost_model_only_decomposer_is_rejected_when_lowering() {
        let topo = trios_topology::line(3);
        let circuit = Circuit::new(3);
        let options = RouterOptions {
            decomposer: trios_passes::DecomposerHandle::named("qutrit"),
            ..RouterOptions::deterministic()
        };
        let mut trace = RoutingTrace::new();
        let err = match RoutingEngine::new(
            &topo,
            Layout::trivial(3, 3),
            &options,
            &circuit,
            &mut trace,
        ) {
            Err(e) => e,
            Ok(_) => panic!("cost-model-only decomposer must not lower"),
        };
        assert!(err.to_string().contains("cost-model-only"));

        // With lowering off the router never asks it for gates, so it is
        // allowed (e.g. for routing-only inspection runs).
        let options = RouterOptions {
            decomposer: trios_passes::DecomposerHandle::named("qutrit"),
            lower_toffoli: false,
            ..RouterOptions::deterministic()
        };
        let mut trace = RoutingTrace::new();
        assert!(
            RoutingEngine::new(&topo, Layout::trivial(3, 3), &options, &circuit, &mut trace)
                .is_ok()
        );
    }

    #[test]
    fn window_cost_still_prefers_closer_reachable_placements() {
        // On a connected line, the penalty path is never taken and nearer
        // placements stay cheaper.
        let topo = trios_topology::line(5);
        let far: VecDeque<Instruction> =
            [Instruction::new(Gate::Cx, &[Qubit::new(0), Qubit::new(4)])]
                .into_iter()
                .collect();
        let near: VecDeque<Instruction> =
            [Instruction::new(Gate::Cx, &[Qubit::new(0), Qubit::new(2)])]
                .into_iter()
                .collect();
        assert!(window_cost_of(&topo, &far) > window_cost_of(&topo, &near));
    }
}
