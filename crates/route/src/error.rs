//! Routing error types.

use std::error::Error;
use std::fmt;

/// Reasons mapping or routing can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The logical circuit has more qubits than the device.
    CircuitTooWide {
        /// Logical qubit count.
        logical: usize,
        /// Physical qubit count.
        physical: usize,
    },
    /// The router met a gate it cannot handle (e.g. a Toffoli reached the
    /// pair router, which requires fully decomposed input).
    UnsupportedGate {
        /// Gate mnemonic.
        gate: &'static str,
        /// Index of the instruction in the input circuit.
        instruction: usize,
    },
    /// Qubits that must interact live in disconnected components.
    Disconnected {
        /// One endpoint (physical index).
        a: usize,
        /// The other endpoint (physical index).
        b: usize,
    },
    /// An initial layout is malformed (wrong length, out of range, or not
    /// injective).
    InvalidLayout {
        /// Explanation of the problem.
        reason: String,
    },
    /// A routing strategy's configuration is inconsistent with the device
    /// (e.g. an edge-error vector of the wrong length).
    InvalidOptions {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::CircuitTooWide { logical, physical } => write!(
                f,
                "circuit has {logical} logical qubits but the device only has {physical}"
            ),
            RouteError::UnsupportedGate { gate, instruction } => write!(
                f,
                "instruction {instruction} ({gate}) is not supported by this router"
            ),
            RouteError::Disconnected { a, b } => write!(
                f,
                "physical qubits {a} and {b} are in disconnected components"
            ),
            RouteError::InvalidLayout { reason } => write!(f, "invalid layout: {reason}"),
            RouteError::InvalidOptions { reason } => {
                write!(f, "invalid router options: {reason}")
            }
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RouteError::CircuitTooWide {
            logical: 25,
            physical: 20,
        };
        assert!(e.to_string().contains("25"));
        let e = RouteError::UnsupportedGate {
            gate: "ccx",
            instruction: 7,
        };
        assert!(e.to_string().contains("ccx"));
    }
}
