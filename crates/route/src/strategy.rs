//! The pluggable routing seam: [`RoutingStrategy`], the built-in
//! strategies, and the [`StrategyRegistry`] that names them.
//!
//! The paper's central comparison — decompose-then-route vs. orchestrated
//! trio routing — is a comparison of *routing policies*. Each policy is a
//! [`RoutingStrategy`] over the shared [`RoutingEngine`]; the registry
//! maps stable names to constructors so every layer (core pass pipeline,
//! CLI, benches) selects routers the same way:
//!
//! | name              | strategy                                         |
//! |-------------------|--------------------------------------------------|
//! | `baseline`        | [`DecomposeFirst`] — the paper's Fig. 2a baseline |
//! | `trios`           | [`OrchestratedTrios`] — the paper's contribution  |
//! | `trios-lookahead` | [`LookaheadTrios`] — windowed-lookahead pairs     |
//! | `trios-noise`     | [`NoiseAwareTrios`] — calibration-weighted paths  |

use crate::engine::RoutingEngine;
use crate::{
    Layout, LookaheadConfig, PathMetric, RouteError, RoutedCircuit, RouterOptions, TrioEvent,
};
use std::fmt;
use std::sync::Arc;
use trios_ir::Circuit;
use trios_noise::Calibration;
use trios_topology::Topology;

/// What one routing run did, beyond the [`RoutedCircuit`] itself: which
/// strategy ran and the raw counters behind the paper's communication
/// metrics. Strategies and the engine append to it; callers hand in a
/// fresh trace per run (the free-function shims do this for you).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTrace {
    /// Registry name of the strategy that ran, when routed through one.
    pub strategy: Option<String>,
    /// SWAP gates inserted.
    pub swaps: usize,
    /// Distance-2 CNOTs rewritten as 4-CNOT bridges.
    pub bridges: usize,
    /// SWAPs chosen by windowed-lookahead scoring (a subset of `swaps`).
    pub lookahead_swaps: usize,
    /// One entry per gathered three-qubit gate, in program order.
    pub trio_events: Vec<TrioEvent>,
}

impl RoutingTrace {
    /// An empty trace.
    pub fn new() -> Self {
        RoutingTrace::default()
    }

    /// Mean gather distance over the recorded trio events, or `None` when
    /// none were recorded — the same statistic as
    /// [`RoutedCircuit::mean_gather_distance`], over whatever this trace
    /// has accumulated.
    pub fn mean_gather_distance(&self) -> Option<f64> {
        crate::router::mean_gather_distance(&self.trio_events)
    }
}

/// One routing policy: turns a logical circuit plus an initial placement
/// into a hardware-legal [`RoutedCircuit`], recording what it did into a
/// [`RoutingTrace`].
///
/// Strategies are `Send + Sync` so the batch compiler's worker threads
/// can share them; implementations should keep all per-run state local to
/// `route` (the built-ins carry only configuration).
pub trait RoutingStrategy: Send + Sync {
    /// The stable registry name (what `--router` accepts).
    fn name(&self) -> &str;

    /// One-line human description for listings.
    fn description(&self) -> &str {
        ""
    }

    /// Whether this strategy routes three-qubit gates itself. When
    /// `false`, the pipeline must decompose Toffolis before routing (the
    /// paper's Fig. 2a ordering).
    fn handles_three_qubit_gates(&self) -> bool {
        true
    }

    /// Routes `circuit` for `topology` starting from `layout`.
    ///
    /// # Errors
    ///
    /// Returns a [`RouteError`] when the circuit does not fit the device,
    /// contains gates the strategy cannot route, or interacting qubits
    /// are disconnected.
    fn route(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        layout: Layout,
        options: &RouterOptions,
        trace: &mut RoutingTrace,
    ) -> Result<RoutedCircuit, RouteError>;
}

/// The conventional decompose-first pair router: requires a fully
/// decomposed circuit (1- and 2-qubit gates only) and routes each distant
/// pair individually. This is the paper's Qiskit-style baseline (Fig. 2a)
/// and is byte-identical to the original [`route_baseline`] free function.
///
/// [`route_baseline`]: crate::route_baseline
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecomposeFirst;

impl RoutingStrategy for DecomposeFirst {
    fn name(&self) -> &str {
        "baseline"
    }

    fn description(&self) -> &str {
        "decompose-first pair router (the paper's Qiskit-style baseline, Fig. 2a)"
    }

    fn handles_three_qubit_gates(&self) -> bool {
        false
    }

    fn route(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        layout: Layout,
        options: &RouterOptions,
        trace: &mut RoutingTrace,
    ) -> Result<RoutedCircuit, RouteError> {
        trace.strategy = Some(self.name().to_string());
        RoutingEngine::new(topology, layout, options, circuit, trace)?.run(circuit, false)
    }
}

/// The paper's contribution: Toffolis survive to the router, which
/// gathers each operand trio to a connected neighborhood as a unit, then
/// applies the placement-appropriate decomposition (Fig. 2b, §4).
/// Byte-identical to the original [`route_trios`] free function.
///
/// [`route_trios`]: crate::route_trios
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrchestratedTrios;

impl RoutingStrategy for OrchestratedTrios {
    fn name(&self) -> &str {
        "trios"
    }

    fn description(&self) -> &str {
        "orchestrated trio router: gather Toffoli operands, decompose placement-aware (Fig. 2b)"
    }

    fn route(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        layout: Layout,
        options: &RouterOptions,
        trace: &mut RoutingTrace,
    ) -> Result<RoutedCircuit, RouteError> {
        trace.strategy = Some(self.name().to_string());
        RoutingEngine::new(topology, layout, options, circuit, trace)?.run(circuit, true)
    }
}

/// Trio routing with windowed-lookahead pair scoring always on: instead
/// of committing to a whole shortest path per 2-qubit gate, SWAPs are
/// chosen one at a time to also minimize a decayed sum of upcoming gate
/// distances (the SABRE-style look-ahead schemes of paper §3).
///
/// The strategy's own [`LookaheadConfig`] applies only when
/// [`RouterOptions::lookahead`] is unset, so explicit per-run
/// configuration still wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookaheadTrios {
    /// Lookahead window, weight, and decay used when the options don't
    /// specify their own.
    pub config: LookaheadConfig,
}

impl LookaheadTrios {
    /// Lookahead trio routing with `config` as the fallback window.
    pub fn new(config: LookaheadConfig) -> Self {
        LookaheadTrios { config }
    }
}

impl Default for LookaheadTrios {
    fn default() -> Self {
        LookaheadTrios::new(LookaheadConfig::default())
    }
}

impl RoutingStrategy for LookaheadTrios {
    fn name(&self) -> &str {
        "trios-lookahead"
    }

    fn description(&self) -> &str {
        "trio router with windowed-lookahead pair scoring (SABRE-style, paper §3)"
    }

    fn route(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        layout: Layout,
        options: &RouterOptions,
        trace: &mut RoutingTrace,
    ) -> Result<RoutedCircuit, RouteError> {
        trace.strategy = Some(self.name().to_string());
        let options = RouterOptions {
            lookahead: Some(options.lookahead.unwrap_or(self.config)),
            ..options.clone()
        };
        RoutingEngine::new(topology, layout, &options, circuit, trace)?.run(circuit, true)
    }
}

/// Default log-uniform spread of [`NoiseAwareTrios`]' sampled per-edge
/// errors around the calibration mean (each edge lands in
/// `[mean/3, mean·3]`), matching the scatter real backends report.
pub const NOISE_AWARE_DEFAULT_SPREAD: f64 = 3.0;

/// Trio routing over a noise-aware path metric: every shortest-path walk
/// weighs edges by `−log(1 − e)` via [`PathMetric::from_edge_errors`], so
/// routed data detours around unreliable couplers (paper §4's noise-aware
/// extension).
///
/// Edge errors come from, in order of preference:
///
/// 1. an explicit [`PathMetric::EdgeWeights`] already present in the
///    [`RouterOptions`] (used as-is),
/// 2. per-edge error rates fixed at construction
///    ([`NoiseAwareTrios::with_edge_errors`]),
/// 3. otherwise, a seeded sample around the paper's Johannesburg
///    calibration mean ([`Calibration::sampled_edge_errors`] with spread
///    [`NOISE_AWARE_DEFAULT_SPREAD`], seeded from
///    [`RouterOptions::seed`]) — the `trios-noise` registry entry uses
///    this, which is how the noise crate feeds routing out of the box.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NoiseAwareTrios {
    edge_errors: Option<Vec<f64>>,
}

impl NoiseAwareTrios {
    /// Noise-aware trio routing that samples per-edge errors around the
    /// Johannesburg calibration at route time (deterministic per seed).
    pub fn from_calibration() -> Self {
        NoiseAwareTrios { edge_errors: None }
    }

    /// Noise-aware trio routing over explicit per-edge two-qubit error
    /// rates, aligned with `Topology::edges()`.
    pub fn with_edge_errors(edge_errors: Vec<f64>) -> Self {
        NoiseAwareTrios {
            edge_errors: Some(edge_errors),
        }
    }
}

impl RoutingStrategy for NoiseAwareTrios {
    fn name(&self) -> &str {
        "trios-noise"
    }

    fn description(&self) -> &str {
        "trio router over -log(1-e) edge weights from device calibration (paper §4)"
    }

    fn route(
        &self,
        circuit: &Circuit,
        topology: &Topology,
        layout: Layout,
        options: &RouterOptions,
        trace: &mut RoutingTrace,
    ) -> Result<RoutedCircuit, RouteError> {
        trace.strategy = Some(self.name().to_string());
        let metric = match &options.metric {
            PathMetric::EdgeWeights(_) => options.metric.clone(),
            PathMetric::Hops => {
                let num_edges = topology.num_edges();
                let errors = match &self.edge_errors {
                    Some(errors) => {
                        if errors.len() != num_edges {
                            return Err(RouteError::InvalidOptions {
                                reason: format!(
                                    "{} edge errors supplied for a topology with {} edges",
                                    errors.len(),
                                    num_edges
                                ),
                            });
                        }
                        errors.clone()
                    }
                    None => Calibration::johannesburg_2020_08_19().sampled_edge_errors(
                        num_edges,
                        NOISE_AWARE_DEFAULT_SPREAD,
                        options.seed,
                    ),
                };
                PathMetric::from_edge_errors(&errors)
            }
        };
        let options = RouterOptions {
            metric,
            ..options.clone()
        };
        RoutingEngine::new(topology, layout, &options, circuit, trace)?.run(circuit, true)
    }
}

/// Constructor stored per registry entry.
pub type StrategyConstructor = Arc<dyn Fn() -> Box<dyn RoutingStrategy> + Send + Sync>;

/// An ordered name → constructor map of routing strategies.
///
/// [`StrategyRegistry::standard`] registers the four built-ins under
/// their stable names; [`StrategyRegistry::register`] adds (or replaces)
/// entries, so downstream crates can plug in custom strategies and still
/// select them by name through the same CLI/bench/core seam.
///
/// # Examples
///
/// ```
/// use trios_ir::Circuit;
/// use trios_route::{Layout, RouterOptions, RoutingTrace, StrategyRegistry};
/// use trios_topology::line;
///
/// let mut program = Circuit::new(3);
/// program.ccx(0, 1, 2);
///
/// let registry = StrategyRegistry::standard();
/// let trios = registry.get("trios").expect("built-in");
/// let mut trace = RoutingTrace::new();
/// let routed = trios.route(
///     &program,
///     &line(3),
///     Layout::trivial(3, 3),
///     &RouterOptions::deterministic(),
///     &mut trace,
/// )?;
/// assert_eq!(trace.strategy.as_deref(), Some("trios"));
/// assert_eq!(routed.trio_events.len(), 1);
/// # Ok::<(), trios_route::RouteError>(())
/// ```
#[derive(Clone, Default)]
pub struct StrategyRegistry {
    entries: Vec<(String, StrategyConstructor)>,
}

impl StrategyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        StrategyRegistry::default()
    }

    /// The registry of built-in strategies: `baseline`, `trios`,
    /// `trios-lookahead`, `trios-noise`, in that listing order.
    pub fn standard() -> Self {
        let mut registry = StrategyRegistry::empty();
        registry.register("baseline", || Box::new(DecomposeFirst));
        registry.register("trios", || Box::new(OrchestratedTrios));
        registry.register("trios-lookahead", || Box::new(LookaheadTrios::default()));
        registry.register("trios-noise", || {
            Box::new(NoiseAwareTrios::from_calibration())
        });
        registry
    }

    /// Registers `constructor` under `name`, replacing any existing entry
    /// with that name (listing order is preserved on replacement).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        constructor: impl Fn() -> Box<dyn RoutingStrategy> + Send + Sync + 'static,
    ) -> &mut Self {
        let name = name.into();
        let constructor: StrategyConstructor = Arc::new(constructor);
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some(entry) => entry.1 = constructor,
            None => self.entries.push((name, constructor)),
        }
        self
    }

    /// Builds the strategy registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Box<dyn RoutingStrategy>> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ctor)| ctor())
    }

    /// `true` when a strategy is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route_baseline, route_trios};
    use trios_passes::{decompose_toffolis, lower_swaps, SixCnotDecomposition};
    use trios_sim::compiled_equivalent;
    use trios_topology::{grid, johannesburg, line};

    fn verify(original: &Circuit, routed: &RoutedCircuit) -> bool {
        let lowered = lower_swaps(&routed.circuit);
        compiled_equivalent(
            original,
            &lowered,
            &routed.initial_layout.to_mapping(),
            &routed.final_layout.to_mapping(),
            3,
            7,
            1e-9,
        )
        .unwrap()
    }

    fn toffoli_program() -> Circuit {
        let mut c = Circuit::new(7);
        c.h(0).ccx(0, 3, 6).cx(0, 5).ccz(1, 4, 6);
        c
    }

    #[test]
    fn standard_registry_lists_the_four_builtins() {
        let registry = StrategyRegistry::standard();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            ["baseline", "trios", "trios-lookahead", "trios-noise"]
        );
        assert_eq!(registry.len(), 4);
        assert!(!registry.is_empty());
        assert!(registry.contains("trios"));
        assert!(!registry.contains("sabre"));
        assert!(registry.get("sabre").is_none());
        for name in registry.names() {
            let strategy = registry.get(name).unwrap();
            assert_eq!(strategy.name(), name);
            assert!(!strategy.description().is_empty(), "{name}");
        }
    }

    #[test]
    fn only_baseline_requires_decomposed_input() {
        let registry = StrategyRegistry::standard();
        for name in registry.names() {
            let strategy = registry.get(name).unwrap();
            assert_eq!(
                strategy.handles_three_qubit_gates(),
                name != "baseline",
                "{name}"
            );
        }
    }

    #[test]
    fn registry_strategies_match_free_functions_exactly() {
        let program = toffoli_program();
        let decomposed = decompose_toffolis(&program, &SixCnotDecomposition);
        let topo = johannesburg();
        let registry = StrategyRegistry::standard();
        for seed in [0u64, 1, 2] {
            let opts = RouterOptions::with_seed(seed);
            let layout = Layout::trivial(7, 20);

            let mut trace = RoutingTrace::new();
            let via_registry = registry
                .get("trios")
                .unwrap()
                .route(&program, &topo, layout.clone(), &opts, &mut trace)
                .unwrap();
            let via_free = route_trios(&program, &topo, layout.clone(), &opts).unwrap();
            assert_eq!(via_registry, via_free, "trios seed {seed}");
            assert_eq!(trace.swaps, via_free.swap_count);
            assert_eq!(trace.trio_events, via_free.trio_events);

            let mut trace = RoutingTrace::new();
            let via_registry = registry
                .get("baseline")
                .unwrap()
                .route(&decomposed, &topo, layout.clone(), &opts, &mut trace)
                .unwrap();
            let via_free = route_baseline(&decomposed, &topo, layout, &opts).unwrap();
            assert_eq!(via_registry, via_free, "baseline seed {seed}");
            assert!(trace.trio_events.is_empty());
        }
    }

    #[test]
    fn baseline_strategy_rejects_toffolis() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let err = DecomposeFirst
            .route(
                &c,
                &line(3),
                Layout::trivial(3, 3),
                &RouterOptions::deterministic(),
                &mut RoutingTrace::new(),
            )
            .unwrap_err();
        assert!(matches!(err, RouteError::UnsupportedGate { .. }));
    }

    #[test]
    fn lookahead_strategy_forces_lookahead_and_preserves_semantics() {
        let program = toffoli_program();
        let topo = grid(4, 2);
        let opts = RouterOptions::deterministic();
        assert!(opts.lookahead.is_none());
        let mut trace = RoutingTrace::new();
        let routed = LookaheadTrios::default()
            .route(&program, &topo, Layout::trivial(7, 8), &opts, &mut trace)
            .unwrap();
        assert_eq!(trace.strategy.as_deref(), Some("trios-lookahead"));
        // Every pair-routing SWAP came from the lookahead scorer (gather
        // SWAPs are committed walks, so the subset relation must hold).
        assert!(trace.lookahead_swaps <= trace.swaps);
        assert!(verify(&program, &routed));
    }

    #[test]
    fn lookahead_strategy_respects_explicit_config() {
        // With options.lookahead set, the strategy must not override it:
        // output equals plain trios routing under the same config.
        let program = toffoli_program();
        let topo = line(7);
        let opts = RouterOptions {
            lookahead: Some(LookaheadConfig {
                window: 5,
                weight: 0.3,
                decay: 0.5,
            }),
            ..RouterOptions::deterministic()
        };
        let via_strategy = LookaheadTrios::default()
            .route(
                &program,
                &topo,
                Layout::trivial(7, 7),
                &opts,
                &mut RoutingTrace::new(),
            )
            .unwrap();
        let via_free = route_trios(&program, &topo, Layout::trivial(7, 7), &opts).unwrap();
        assert_eq!(via_strategy, via_free);
    }

    #[test]
    fn noise_aware_strategy_detours_around_bad_edges() {
        let topo = grid(3, 2); // 0-1-2 / 3-4-5
        let mut c = Circuit::new(6);
        c.cx(0, 2);
        let errors: Vec<f64> = topo
            .edges()
            .iter()
            .map(|&e| if e == (1, 2) { 0.9 } else { 0.001 })
            .collect();
        let routed = NoiseAwareTrios::with_edge_errors(errors)
            .route(
                &c,
                &topo,
                Layout::trivial(6, 6),
                &RouterOptions::deterministic(),
                &mut RoutingTrace::new(),
            )
            .unwrap();
        // Detour through the back row: no SWAP may touch the bad edge.
        assert!(routed.circuit.iter().all(|i| {
            i.gate() != trios_ir::Gate::Swap || {
                let (a, b) = (i.qubit(0).index(), i.qubit(1).index());
                (a.min(b), a.max(b)) != (1, 2)
            }
        }));
        assert!(verify(&c, &routed));
    }

    #[test]
    fn noise_aware_bridge_middle_is_a_common_neighbor() {
        // Regression: with a weighted metric the shortest *weighted* path
        // between a distance-2 pair can be a detour whose second node is
        // not adjacent to both endpoints; the bridge middle must come from
        // the hop path, or the emitted CNOTs land on non-edges.
        use crate::check_legal;
        use crate::legality::ToffoliPolicy;
        let topo = grid(3, 2); // 0-1-2 / 3-4-5
        let mut c = Circuit::new(6);
        c.cx(0, 2);
        let errors: Vec<f64> = topo
            .edges()
            .iter()
            .map(|&e| {
                if e == (0, 1) || e == (1, 2) {
                    0.9 // weighted path detours 0-3-4-5-2
                } else {
                    0.001
                }
            })
            .collect();
        let opts = RouterOptions {
            bridge: true,
            ..RouterOptions::deterministic()
        };
        let routed = NoiseAwareTrios::with_edge_errors(errors)
            .route(
                &c,
                &topo,
                Layout::trivial(6, 6),
                &opts,
                &mut RoutingTrace::new(),
            )
            .unwrap();
        assert!(check_legal(&routed.circuit, &topo, ToffoliPolicy::Forbid).is_ok());
        assert!(verify(&c, &routed));
    }

    #[test]
    fn noise_aware_strategy_validates_edge_count() {
        let err = NoiseAwareTrios::with_edge_errors(vec![0.01; 2])
            .route(
                &Circuit::new(3),
                &line(5),
                Layout::trivial(3, 5),
                &RouterOptions::deterministic(),
                &mut RoutingTrace::new(),
            )
            .unwrap_err();
        assert!(matches!(err, RouteError::InvalidOptions { .. }));
        assert!(err.to_string().contains("edge errors"));
    }

    #[test]
    fn noise_aware_default_is_seed_deterministic_and_correct() {
        let program = toffoli_program();
        let topo = johannesburg();
        let strategy = NoiseAwareTrios::from_calibration();
        let opts = RouterOptions::deterministic();
        let a = strategy
            .route(
                &program,
                &topo,
                Layout::trivial(7, 20),
                &opts,
                &mut RoutingTrace::new(),
            )
            .unwrap();
        let b = strategy
            .route(
                &program,
                &topo,
                Layout::trivial(7, 20),
                &opts,
                &mut RoutingTrace::new(),
            )
            .unwrap();
        assert_eq!(a, b, "same seed must sample the same edge errors");
        let other_seed = strategy
            .route(
                &program,
                &topo,
                Layout::trivial(7, 20),
                &RouterOptions {
                    seed: 99,
                    ..RouterOptions::deterministic()
                },
                &mut RoutingTrace::new(),
            )
            .unwrap();
        // Different seed, different sampled error landscape (the routed
        // circuit may coincide, but determinism per seed is the contract).
        let _ = other_seed;
        assert!(verify(&program, &a));
    }

    #[test]
    fn noise_aware_respects_explicit_metric_in_options() {
        // An explicit EdgeWeights metric wins over the strategy's errors.
        let topo = line(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let weights = vec![1.0; topo.edges().len()];
        let opts = RouterOptions {
            metric: PathMetric::EdgeWeights(weights),
            ..RouterOptions::deterministic()
        };
        let via_strategy = NoiseAwareTrios::from_calibration()
            .route(
                &c,
                &topo,
                Layout::trivial(4, 4),
                &opts,
                &mut RoutingTrace::new(),
            )
            .unwrap();
        let via_free = route_trios(&c, &topo, Layout::trivial(4, 4), &opts).unwrap();
        assert_eq!(via_strategy, via_free);
    }

    #[test]
    fn custom_strategies_can_be_registered_and_replaced() {
        struct Reversed;
        impl RoutingStrategy for Reversed {
            fn name(&self) -> &str {
                "custom"
            }
            fn route(
                &self,
                circuit: &Circuit,
                topology: &Topology,
                layout: Layout,
                options: &RouterOptions,
                trace: &mut RoutingTrace,
            ) -> Result<RoutedCircuit, RouteError> {
                OrchestratedTrios.route(circuit, topology, layout, options, trace)
            }
        }
        let mut registry = StrategyRegistry::standard();
        registry.register("custom", || Box::new(Reversed));
        assert_eq!(registry.len(), 5);
        assert!(registry.contains("custom"));
        // Replacement keeps order and count.
        registry.register("custom", || Box::new(Reversed));
        assert_eq!(registry.len(), 5);
        assert_eq!(registry.names().last(), Some("custom"));
        let debug = format!("{registry:?}");
        assert!(debug.contains("custom"), "{debug}");
    }

    #[test]
    fn trace_accumulates_across_runs_without_polluting_results() {
        // Reusing one trace across runs accumulates counters, but each
        // RoutedCircuit only carries its own events.
        let mut c = Circuit::new(5);
        c.ccx(0, 2, 4);
        let topo = line(5);
        let mut trace = RoutingTrace::new();
        let first = OrchestratedTrios
            .route(
                &c,
                &topo,
                Layout::trivial(5, 5),
                &RouterOptions::deterministic(),
                &mut trace,
            )
            .unwrap();
        let second = OrchestratedTrios
            .route(
                &c,
                &topo,
                Layout::trivial(5, 5),
                &RouterOptions::deterministic(),
                &mut trace,
            )
            .unwrap();
        assert_eq!(first.trio_events.len(), 1);
        assert_eq!(second.trio_events.len(), 1);
        assert_eq!(trace.trio_events.len(), 2);
        assert_eq!(trace.swaps, first.swap_count + second.swap_count);
    }
}
