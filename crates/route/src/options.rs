//! Router configuration.

use trios_passes::DecomposerHandle;

/// Which endpoint of a distant 2-qubit gate the router moves (paper §3:
/// "usually by adding SWAPs from control to target or the reverse, but a
/// meet-in-the-middle strategy is also possible").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionPolicy {
    /// Always move the first operand toward the second.
    MoveFirst,
    /// Always move the second operand toward the first.
    MoveSecond,
    /// Choose randomly per gate — models Qiskit's stochastic routing, whose
    /// "even chance" of separating just-gathered qubits motivates the paper.
    #[default]
    Stochastic,
    /// Both endpoints move toward the middle of the path.
    MeetInMiddle,
}

/// How the router measures path length.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PathMetric {
    /// Hop count (BFS shortest paths).
    #[default]
    Hops,
    /// Noise-aware weights: one `−log(1 − e)` cost per topology edge, in
    /// the same order as `Topology::edges()` (paper §4's noise-aware
    /// extension).
    EdgeWeights(Vec<f64>),
}

impl PathMetric {
    /// Builds a noise-aware metric from per-edge two-qubit error rates
    /// (aligned with `Topology::edges()`): weight `= −log(1 − error)`.
    ///
    /// # Panics
    ///
    /// Panics if any error rate is outside `[0, 1)`.
    pub fn from_edge_errors(errors: &[f64]) -> Self {
        let weights = errors
            .iter()
            .map(|&e| {
                assert!((0.0..1.0).contains(&e), "error rate {e} outside [0, 1)");
                -(1.0 - e).ln()
            })
            .collect();
        PathMetric::EdgeWeights(weights)
    }
}

/// Configuration of the windowed-lookahead pair strategy (the "lookahead
/// when choosing routing strategies" comparator of paper §3, after Wille et
/// al.'s look-ahead schemes).
///
/// Instead of committing to a whole shortest path per gate, the router
/// inserts one SWAP at a time: among the distance-decreasing SWAPs for the
/// front gate, it picks the one that also minimizes a decayed sum of the
/// distances of the next `window` multi-qubit gates. Progress is guaranteed
/// because every candidate strictly shrinks the front gate's distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookaheadConfig {
    /// How many upcoming multi-qubit gates contribute to the cost.
    pub window: usize,
    /// Weight of the whole lookahead term relative to the front gate.
    pub weight: f64,
    /// Per-gate geometric decay inside the window.
    pub decay: f64,
}

impl Default for LookaheadConfig {
    fn default() -> Self {
        LookaheadConfig {
            window: 20,
            weight: 0.5,
            decay: 0.8,
        }
    }
}

/// Options shared by the baseline pair router and the Trios trio router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterOptions {
    /// Decomposition strategy for the Trios router's inline second
    /// decomposition pass. `standard` is the paper's connectivity-aware
    /// Trios; `six`/`eight` force one form for the Fig. 6/7 ablation, and
    /// the registry adds `tdepth` and `relative-phase`. Resolved when the
    /// engine is built — unknown names (and non-executable strategies while
    /// `lower_toffoli` is on) are rejected as invalid options.
    pub decomposer: DecomposerHandle,
    /// Which endpoint moves when routing a distant pair.
    pub direction: DirectionPolicy,
    /// Path metric (hops, or noise-aware edge weights).
    pub metric: PathMetric,
    /// Seed for the stochastic direction policy.
    pub seed: u64,
    /// When `false`, the Trios router leaves gathered Toffolis as `ccx`
    /// instructions on their (line- or triangle-shaped) physical triples
    /// instead of decomposing them — useful for inspecting routing itself,
    /// as in the paper's Figure 1.
    pub lower_toffoli: bool,
    /// When set, distant pairs are routed with windowed lookahead instead
    /// of a committed shortest-path walk. The paper's §3 position is that
    /// lookahead "treats the symptoms" of pre-decomposition without fixing
    /// it; the ablation bench quantifies exactly that.
    pub lookahead: Option<LookaheadConfig>,
    /// When `true`, a CNOT between qubits at distance exactly 2 is
    /// implemented as a 4-CNOT *bridge* over the middle qubit instead of
    /// SWAP-then-CNOT. Same CNOT cost (4 = 3 + 1) but the layout is left
    /// unchanged — better when the pair interacts once, worse when the
    /// proximity would have been reused. Off by default (the paper routes
    /// with SWAPs only); ablated in the bench suite.
    pub bridge: bool,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            decomposer: DecomposerHandle::default(),
            direction: DirectionPolicy::default(),
            metric: PathMetric::default(),
            seed: 0,
            lower_toffoli: true,
            lookahead: None,
            bridge: false,
        }
    }
}

impl RouterOptions {
    /// Options with a fixed seed and otherwise default behaviour.
    pub fn with_seed(seed: u64) -> Self {
        RouterOptions {
            seed,
            ..RouterOptions::default()
        }
    }

    /// Deterministic options (no stochastic choices), for reproducible
    /// tests and figures.
    pub fn deterministic() -> Self {
        RouterOptions {
            direction: DirectionPolicy::MoveFirst,
            ..RouterOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let o = RouterOptions::default();
        assert_eq!(o.decomposer.name(), "standard");
        assert_eq!(o.direction, DirectionPolicy::Stochastic);
        assert_eq!(o.metric, PathMetric::Hops);
        assert!(o.lower_toffoli);
    }

    #[test]
    fn edge_error_weights_are_positive_and_monotone() {
        let m = PathMetric::from_edge_errors(&[0.01, 0.05, 0.0]);
        if let PathMetric::EdgeWeights(w) = m {
            assert!(w[0] > 0.0);
            assert!(w[1] > w[0]);
            assert_eq!(w[2], 0.0);
        } else {
            panic!("expected weights");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn edge_error_weights_reject_invalid() {
        PathMetric::from_edge_errors(&[1.5]);
    }
}
