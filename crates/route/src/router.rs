//! The routed-circuit result types and the two original routing entry
//! points, now thin shims over the [`RoutingStrategy`] seam: the
//! conventional pair router (baseline) and the Trios trio router that
//! gathers Toffoli operands as a unit (paper §4).

use crate::strategy::{DecomposeFirst, OrchestratedTrios, RoutingStrategy, RoutingTrace};
use crate::{Layout, RouteError, RouterOptions};
use trios_ir::{Circuit, Gate};
use trios_topology::{Topology, TripleShape};

/// One gathered trio, recorded by the Trios router as it runs — the
/// per-Toffoli data behind the paper's Figure 6/7 x-axis ("total swap
/// distance") and its §6.3 placement discussion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrioEvent {
    /// The gate that was gathered.
    pub gate: Gate,
    /// Gather distance before routing: the minimum summed distance from
    /// two operands to the third (0 when already connected).
    pub gather_distance: usize,
    /// SWAPs this gather inserted.
    pub swaps: usize,
    /// How the trio sat after gathering.
    pub shape: TripleShape,
}

/// The product of a routing pass: a physical-qubit circuit (with explicit
/// SWAPs) plus the layouts needed to interpret and verify it.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// The routed circuit over physical qubits. Contains `swap` gates;
    /// contains `ccx` only when routing ran with `lower_toffoli = false`.
    pub circuit: Circuit,
    /// Where each logical qubit started.
    pub initial_layout: Layout,
    /// Where each logical qubit ended after all routing SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates the router inserted.
    pub swap_count: usize,
    /// One entry per three-qubit gate the trio router processed, in
    /// program order (a `cswap` contributes a second entry for its inner
    /// Toffoli; empty for the baseline pair router).
    pub trio_events: Vec<TrioEvent>,
}

impl RoutedCircuit {
    /// Two-qubit gate count after lowering SWAPs to 3 CX each — the
    /// paper's primary static metric.
    pub fn cx_cost(&self) -> usize {
        self.circuit.counts().two_qubit_equivalent()
    }

    /// Mean gather distance over the routed trios — a one-number locality
    /// profile of the workload on this device.
    ///
    /// Returns `None` (never `Some(NaN)`, never a panic) when no trio
    /// events were recorded: the program had no three-qubit gates, or it
    /// was routed by a pair strategy that records none.
    pub fn mean_gather_distance(&self) -> Option<f64> {
        mean_gather_distance(&self.trio_events)
    }
}

/// The one definition of the mean-gather-distance statistic, shared by
/// [`RoutedCircuit::mean_gather_distance`] and
/// [`RoutingTrace::mean_gather_distance`](crate::RoutingTrace::mean_gather_distance):
/// the average [`TrioEvent::gather_distance`], `None` over no events.
pub(crate) fn mean_gather_distance(events: &[TrioEvent]) -> Option<f64> {
    if events.is_empty() {
        return None;
    }
    Some(events.iter().map(|e| e.gather_distance as f64).sum::<f64>() / events.len() as f64)
}

/// Routes a fully decomposed circuit (1- and 2-qubit gates only) with the
/// conventional per-pair strategy: this is the paper's baseline (Fig. 2a).
///
/// A thin shim over the [`DecomposeFirst`] strategy (registry name
/// `"baseline"`), kept for compatibility; its output is byte-identical to
/// routing through the strategy with a fresh [`RoutingTrace`].
///
/// # Errors
///
/// Returns [`RouteError::UnsupportedGate`] if the circuit still contains a
/// 3-qubit gate, [`RouteError::CircuitTooWide`] if it does not fit the
/// device, or [`RouteError::Disconnected`] if interacting qubits cannot be
/// joined.
pub fn route_baseline(
    circuit: &Circuit,
    topology: &Topology,
    initial: Layout,
    options: &RouterOptions,
) -> Result<RoutedCircuit, RouteError> {
    DecomposeFirst.route(
        circuit,
        topology,
        initial,
        options,
        &mut RoutingTrace::new(),
    )
}

/// Routes a Toffoli-level circuit (1-, 2-, and 3-qubit gates) with the
/// Trios strategy: Toffoli operand trios are gathered to a common
/// neighborhood as a unit, then decomposed with the placement-appropriate
/// decomposition (paper Fig. 2b and §4).
///
/// A thin shim over the [`OrchestratedTrios`] strategy (registry name
/// `"trios"`), kept for compatibility; its output is byte-identical to
/// routing through the strategy with a fresh [`RoutingTrace`].
///
/// # Errors
///
/// Same conditions as [`route_baseline`] except Toffolis are supported.
pub fn route_trios(
    circuit: &Circuit,
    topology: &Topology,
    initial: Layout,
    options: &RouterOptions,
) -> Result<RoutedCircuit, RouteError> {
    OrchestratedTrios.route(
        circuit,
        topology,
        initial,
        options,
        &mut RoutingTrace::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectionPolicy, LookaheadConfig, PathMetric};
    use trios_passes::{lower_swaps, DecomposerHandle, SixCnotDecomposition};
    use trios_sim::compiled_equivalent;
    use trios_topology::{grid, johannesburg, line};

    const EPS: f64 = 1e-9;

    fn verify(original: &Circuit, routed: &RoutedCircuit) -> bool {
        let lowered = lower_swaps(&routed.circuit);
        compiled_equivalent(
            original,
            &lowered,
            &routed.initial_layout.to_mapping(),
            &routed.final_layout.to_mapping(),
            3,
            7,
            EPS,
        )
        .unwrap()
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let topo = line(3);
        let routed = route_baseline(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.len(), 3);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn distant_pair_gets_swapped_together() {
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let topo = line(5);
        let routed = route_baseline(
            &c,
            &topo,
            Layout::trivial(5, 5),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 3);
        assert!(verify(&c, &routed));
        // MoveFirst: logical 0 walked to physical 3.
        assert_eq!(routed.final_layout.physical(0), 3);
    }

    #[test]
    fn move_second_policy_moves_target() {
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let topo = line(5);
        let opts = RouterOptions {
            direction: DirectionPolicy::MoveSecond,
            ..RouterOptions::default()
        };
        let routed = route_baseline(&c, &topo, Layout::trivial(5, 5), &opts).unwrap();
        assert_eq!(routed.swap_count, 3);
        assert_eq!(routed.final_layout.physical(4), 1);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn meet_in_middle_splits_the_walk() {
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let topo = line(6);
        let opts = RouterOptions {
            direction: DirectionPolicy::MeetInMiddle,
            ..RouterOptions::default()
        };
        let routed = route_baseline(&c, &topo, Layout::trivial(6, 6), &opts).unwrap();
        assert_eq!(routed.swap_count, 4);
        assert_eq!(routed.final_layout.physical(0), 2);
        assert_eq!(routed.final_layout.physical(5), 3);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn stochastic_policy_is_seed_deterministic() {
        let mut c = Circuit::new(8);
        c.cx(0, 7).cx(1, 6).cx(2, 5);
        let topo = line(8);
        let a = route_baseline(
            &c,
            &topo,
            Layout::trivial(8, 8),
            &RouterOptions::with_seed(3),
        )
        .unwrap();
        let b = route_baseline(
            &c,
            &topo,
            Layout::trivial(8, 8),
            &RouterOptions::with_seed(3),
        )
        .unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert!(verify(&c, &a));
    }

    #[test]
    fn baseline_rejects_toffolis() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = line(3);
        let err = route_baseline(&c, &topo, Layout::trivial(3, 3), &RouterOptions::default())
            .unwrap_err();
        assert!(matches!(
            err,
            RouteError::UnsupportedGate { gate: "ccx", .. }
        ));
    }

    #[test]
    fn too_wide_circuit_is_rejected() {
        let topo = line(5);
        assert!(matches!(
            route_baseline(
                &Circuit::new(10),
                &topo,
                Layout::trivial(5, 5),
                &RouterOptions::default()
            ),
            Err(RouteError::CircuitTooWide { .. })
        ));
        // A layout whose logical width disagrees with the circuit is also
        // rejected.
        assert!(matches!(
            route_baseline(
                &Circuit::new(3),
                &topo,
                Layout::trivial(5, 5),
                &RouterOptions::default()
            ),
            Err(RouteError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn trios_gathers_distant_toffoli_on_a_line() {
        let mut c = Circuit::new(7);
        c.ccx(0, 3, 6);
        let topo = line(7);
        let opts = RouterOptions {
            lower_toffoli: false,
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(7, 7), &opts).unwrap();
        // Destination is the middle operand (logical 1 at phys 3):
        // movers 0 and 6 each travel 2 SWAPs.
        assert_eq!(routed.swap_count, 4);
        let ccx = routed
            .circuit
            .iter()
            .find(|i| i.gate() == Gate::Ccx)
            .expect("ccx preserved");
        let (a, m, b) = (
            ccx.qubit(0).index(),
            ccx.qubit(1).index(),
            ccx.qubit(2).index(),
        );
        assert_ne!(
            topo.triple_shape(a, m, b),
            TripleShape::Disconnected,
            "trio must be gathered"
        );
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_lowered_output_is_hardware_ready_after_swap_lowering() {
        let mut c = Circuit::new(7);
        c.h(0).ccx(0, 3, 6).cx(0, 1).ccx(2, 4, 5);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.circuit.counts().ccx, 0);
        let lowered = lower_swaps(&routed.circuit);
        assert!(lowered.is_hardware_lowered());
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_connectivity_aware_picks_8cnot_on_triangle_free_devices() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = johannesburg();
        let layout = Layout::from_mapping(&[0, 1, 2], 20).unwrap();
        let routed = route_trios(&c, &topo, layout, &RouterOptions::deterministic()).unwrap();
        // Adjacent line 0–1–2: no SWAPs, 8 CX (Johannesburg has no triangles).
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 8);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_forced_six_on_a_line_needs_one_extra_swap() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = line(3);
        let opts = RouterOptions {
            decomposer: DecomposerHandle::named("six"),
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(3, 3), &opts).unwrap();
        // The 6-CNOT decomposition interleaves all three qubit pairs, so on
        // a line the qubits "compete to be neighbors" (paper §3) and extra
        // SWAPs appear. The paper's conclusion: 8-CNOT wins on lines.
        assert_eq!(routed.circuit.counts().cx, 6);
        assert!(routed.swap_count >= 1);
        assert_eq!(routed.cx_cost(), 6 + 3 * routed.swap_count);
        assert!(
            routed.cx_cost() > 8,
            "forced 6-CNOT on a line must cost more than the 8-CNOT form"
        );
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_forced_eight_matches_connectivity_aware_on_lines() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = line(3);
        let opts = RouterOptions {
            decomposer: DecomposerHandle::named("eight"),
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(3, 3), &opts).unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 8);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_on_triangle_uses_6cnot() {
        use trios_topology::full;
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = full(3);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 6);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn fig1_trios_beats_baseline_on_johannesburg() {
        // The paper's Figure 1 scenario: a single distant Toffoli.
        let mut toffoli_level = Circuit::new(20);
        toffoli_level.ccx(0, 1, 2);
        let decomposed = trios_passes::decompose_toffolis(&toffoli_level, &SixCnotDecomposition);
        let topo = johannesburg();
        // Qubits placed far apart, like the paper's red trio.
        let mapping: Vec<usize> = {
            let mut m: Vec<usize> = (0..20).collect();
            // logical 0 → 6, logical 1 → 17, logical 2 → 3 (Fig. 6's
            // hardest triple), displacing the identity assignment.
            m.swap(0, 6);
            m.swap(1, 17);
            m.swap(2, 3);
            m
        };
        let layout = Layout::from_mapping(&mapping, 20).unwrap();
        let opts = RouterOptions::deterministic();
        let base = route_baseline(&decomposed, &topo, layout.clone(), &opts).unwrap();
        let trios = route_trios(&toffoli_level, &topo, layout, &opts).unwrap();
        assert!(
            trios.cx_cost() < base.cx_cost(),
            "trios {} should beat baseline {}",
            trios.cx_cost(),
            base.cx_cost()
        );
        assert!(verify(&toffoli_level, &trios));
        assert!(verify(&decomposed, &base));
    }

    #[test]
    fn noise_aware_metric_detours_around_bad_edges() {
        let topo = grid(3, 2); // 0-1-2 / 3-4-5
        let mut c = Circuit::new(6);
        c.cx(0, 2);
        // Make edge (1,2) terrible so the router detours through the back
        // row. Edges are sorted; build weights aligned with them.
        let weights: Vec<f64> = topo
            .edges()
            .iter()
            .map(|&e| if e == (1, 2) { 100.0 } else { 1.0 })
            .collect();
        let opts = RouterOptions {
            metric: PathMetric::EdgeWeights(weights),
            ..RouterOptions::deterministic()
        };
        let routed = route_baseline(&c, &topo, Layout::trivial(6, 6), &opts).unwrap();
        // Detour 0→3→4→5→2 costs 3 swaps instead of 1; the router should
        // prefer it only because of the weights.
        assert!(routed.circuit.iter().all(|i| i.gate() != Gate::Swap
            || (i.qubit(0).index(), i.qubit(1).index()) != (1, 2)
                && (i.qubit(1).index(), i.qubit(0).index()) != (1, 2)));
        assert!(verify(&c, &routed));
    }

    fn lookahead_opts() -> RouterOptions {
        RouterOptions {
            lookahead: Some(LookaheadConfig::default()),
            ..RouterOptions::deterministic()
        }
    }

    #[test]
    fn lookahead_single_pair_uses_minimum_swaps() {
        // One distant gate: lookahead must match the shortest-path walk
        // exactly (distance − 1 SWAPs).
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let topo = line(6);
        let routed = route_baseline(&c, &topo, Layout::trivial(6, 6), &lookahead_opts()).unwrap();
        assert_eq!(routed.swap_count, 4);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn lookahead_adjacent_pair_is_a_noop() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let topo = line(3);
        let routed = route_baseline(&c, &topo, Layout::trivial(3, 3), &lookahead_opts()).unwrap();
        assert_eq!(routed.swap_count, 0);
    }

    #[test]
    fn lookahead_steers_toward_future_partners() {
        // Grid 3×3 (0-1-2 / 3-4-5 / 6-7-8). First gate CX(0,8) has many
        // shortest paths; the follow-up CX(0,2) makes paths through the
        // top row strictly better. The committed walk cannot see that.
        let topo = grid(3, 3);
        let mut c = Circuit::new(9);
        c.cx(0, 8).cx(0, 2);
        let look = route_baseline(&c, &topo, Layout::trivial(9, 9), &lookahead_opts()).unwrap();
        let blind = route_baseline(
            &c,
            &topo,
            Layout::trivial(9, 9),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert!(
            look.swap_count <= blind.swap_count,
            "lookahead {} should not lose to committed walk {}",
            look.swap_count,
            blind.swap_count
        );
        assert!(verify(&c, &look));
        assert!(verify(&c, &blind));
    }

    #[test]
    fn lookahead_is_deterministic() {
        let mut c = Circuit::new(8);
        c.cx(0, 7).cx(2, 6).cx(1, 5).cx(0, 4);
        let topo = grid(4, 2);
        let a = route_baseline(&c, &topo, Layout::trivial(8, 8), &lookahead_opts()).unwrap();
        let b = route_baseline(&c, &topo, Layout::trivial(8, 8), &lookahead_opts()).unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert!(verify(&c, &a));
    }

    #[test]
    fn lookahead_works_under_trios_gather() {
        // Lookahead handles the 2q traffic while trios gather the ccx.
        let mut c = Circuit::new(7);
        c.cx(0, 6).ccx(0, 3, 6).cx(0, 6);
        let topo = line(7);
        let routed = route_trios(&c, &topo, Layout::trivial(7, 7), &lookahead_opts()).unwrap();
        assert_eq!(routed.circuit.counts().three_qubit, 0);
        assert!(verify(&c, &routed));
    }

    fn bridge_opts() -> RouterOptions {
        RouterOptions {
            bridge: true,
            ..RouterOptions::deterministic()
        }
    }

    #[test]
    fn bridge_replaces_distance_two_cnot_without_moving_data() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let topo = line(3);
        let routed = route_baseline(&c, &topo, Layout::trivial(3, 3), &bridge_opts()).unwrap();
        assert_eq!(routed.swap_count, 0, "bridge must not permute the layout");
        assert_eq!(routed.circuit.counts().cx, 4);
        assert_eq!(routed.initial_layout, routed.final_layout);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn bridge_ignores_longer_distances_and_other_gates() {
        // Distance 3: falls back to SWAP routing.
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let topo = line(4);
        let routed = route_baseline(&c, &topo, Layout::trivial(4, 4), &bridge_opts()).unwrap();
        assert!(routed.swap_count > 0);
        assert!(verify(&c, &routed));
        // CZ at distance 2: no bridge identity, SWAP routing.
        let mut c = Circuit::new(3);
        c.cz(0, 2);
        let topo = line(3);
        let routed = route_baseline(&c, &topo, Layout::trivial(3, 3), &bridge_opts()).unwrap();
        assert_eq!(routed.swap_count, 1);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn bridge_wins_when_pair_interacts_once_loses_on_reuse() {
        let topo = line(3);
        // Single interaction: bridge 4 CX vs swap 3+1 = 4 CX — tie on
        // gates, but the layout stays home (observable below).
        let mut once = Circuit::new(3);
        once.cx(0, 2);
        // Repeated interaction: swapping once amortizes; bridging pays 4
        // CX every time.
        let mut thrice = Circuit::new(3);
        thrice.cx(0, 2).cx(0, 2).cx(0, 2);
        let bridged =
            route_baseline(&thrice, &topo, Layout::trivial(3, 3), &bridge_opts()).unwrap();
        let swapped = route_baseline(
            &thrice,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(bridged.cx_cost(), 12);
        assert_eq!(swapped.cx_cost(), 3 + 3, "one swap then three local CX");
        assert!(verify(&thrice, &bridged));
        assert!(verify(&thrice, &swapped));
        let _ = once;
    }

    #[test]
    fn bridge_composes_with_trios_gather() {
        let mut c = Circuit::new(5);
        c.cx(0, 2).ccx(0, 2, 4).cx(2, 4);
        let topo = line(5);
        let routed = route_trios(&c, &topo, Layout::trivial(5, 5), &bridge_opts()).unwrap();
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_routes_ccz_with_symmetric_decomposition() {
        // CCZ on a line: 8-CNOT CCZ form, no H gates, no extra SWAPs once
        // gathered.
        let mut c = Circuit::new(7);
        c.ccz(0, 3, 6);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 4, "same gather cost as a Toffoli");
        assert_eq!(routed.circuit.counts().cx, 8);
        assert_eq!(
            routed
                .circuit
                .iter()
                .filter(|i| i.gate() == Gate::H)
                .count(),
            0,
            "CCZ decomposition has no Hadamards"
        );
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_routes_ccz_on_triangle_with_6cnot() {
        use trios_topology::full;
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let topo = full(3);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 6);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_routes_cswap_as_gathered_unit() {
        let mut c = Circuit::new(7);
        c.cswap(0, 3, 6);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        // Gather cost plus the CX-conjugated 8-CNOT Toffoli; the gather
        // centers on a swapped operand so the conjugating CXs are adjacent.
        assert_eq!(routed.circuit.counts().cswap, 0);
        assert_eq!(routed.circuit.counts().cx, 10);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_cswap_destination_is_a_swapped_operand() {
        // Control far out on one side: the unrestricted destination rule
        // would pick the middle operand regardless of role; for Fredkin the
        // destination must be one of the swapped pair.
        let mut c = Circuit::new(9);
        c.cswap(4, 0, 8); // control sits physically between the pair
        let topo = line(9);
        let opts = RouterOptions {
            lower_toffoli: false,
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(9, 9), &opts).unwrap();
        let kept = routed
            .circuit
            .iter()
            .find(|i| i.gate() == Gate::Cswap)
            .expect("cswap preserved when lowering is off");
        // The physical trio must be connected.
        let (pc, pa, pb) = (
            kept.qubit(0).index(),
            kept.qubit(1).index(),
            kept.qubit(2).index(),
        );
        assert_ne!(topo.triple_shape(pc, pa, pb), TripleShape::Disconnected);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn mixed_three_qubit_program_routes_and_verifies() {
        let mut c = Circuit::new(8);
        c.h(0)
            .ccx(0, 3, 6)
            .ccz(1, 4, 7)
            .cswap(2, 5, 7)
            .cx(0, 7)
            .ccz(0, 1, 2);
        let topo = grid(4, 2);
        for seed in [0u64, 1, 2] {
            let routed = route_trios(
                &c,
                &topo,
                Layout::trivial(8, 8),
                &RouterOptions::with_seed(seed),
            )
            .unwrap();
            assert_eq!(routed.circuit.counts().three_qubit, 0);
            assert!(verify(&c, &routed), "seed {seed}");
        }
    }

    #[test]
    fn trio_events_record_gather_distance_and_shape() {
        let mut c = Circuit::new(7);
        c.ccx(0, 3, 6).ccx(0, 3, 6);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.trio_events.len(), 2);
        let first = routed.trio_events[0];
        assert_eq!(first.gate, Gate::Ccx);
        // Trivial layout 0–3–6 on a line: best destination is the middle
        // operand, summed distance 6, i.e. 4 SWAPs beyond connected.
        assert_eq!(first.gather_distance, 4);
        assert_eq!(first.swaps, 4);
        assert!(matches!(first.shape, TripleShape::Line { .. }));
        // The second Toffoli reuses the gathered placement.
        let second = routed.trio_events[1];
        assert_eq!(second.gather_distance, 0);
        assert_eq!(second.swaps, 0);
        assert!((routed.mean_gather_distance().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_routing_records_no_trio_events() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let topo = line(4);
        let routed = route_baseline(
            &c,
            &topo,
            Layout::trivial(4, 4),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert!(routed.trio_events.is_empty());
        assert_eq!(routed.mean_gather_distance(), None);
    }

    #[test]
    fn mean_gather_distance_is_none_not_nan_without_events() {
        // Constructed directly (not via a router) so the empty-events
        // contract is pinned independently of any strategy's behavior.
        let routed = RoutedCircuit {
            circuit: Circuit::new(2),
            initial_layout: Layout::trivial(2, 2),
            final_layout: Layout::trivial(2, 2),
            swap_count: 0,
            trio_events: Vec::new(),
        };
        assert_eq!(routed.mean_gather_distance(), None);
        // And with events, the mean is finite — never NaN.
        let routed = RoutedCircuit {
            trio_events: vec![TrioEvent {
                gate: Gate::Ccx,
                gather_distance: 3,
                swaps: 3,
                shape: TripleShape::Line { middle: 1 },
            }],
            ..routed
        };
        let mean = routed.mean_gather_distance().unwrap();
        assert!(mean.is_finite());
        assert!((mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cswap_contributes_two_trio_events() {
        let mut c = Circuit::new(5);
        c.cswap(0, 2, 4);
        let topo = line(5);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(5, 5),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.trio_events.len(), 2);
        assert_eq!(routed.trio_events[0].gate, Gate::Cswap);
        assert_eq!(routed.trio_events[1].gate, Gate::Ccx);
        assert_eq!(
            routed.trio_events[1].gather_distance, 0,
            "inner ccx is pre-gathered"
        );
    }

    #[test]
    fn measurements_are_mapped_to_physical_homes() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).measure(0).measure(1);
        let topo = line(4);
        let layout = Layout::from_mapping(&[2, 3], 4).unwrap();
        let routed = route_baseline(&c, &topo, layout, &RouterOptions::deterministic()).unwrap();
        let measured: Vec<usize> = routed
            .circuit
            .iter()
            .filter(|i| i.gate() == Gate::Measure)
            .map(|i| i.qubit(0).index())
            .collect();
        assert_eq!(measured, vec![2, 3]);
    }
}
