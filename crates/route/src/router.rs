//! The routing passes: the conventional pair router (baseline) and the
//! Trios trio router that gathers Toffoli operands as a unit (paper §4).

use crate::{DirectionPolicy, Layout, LookaheadConfig, PathMetric, RouteError, RouterOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use trios_ir::{Circuit, Gate, Instruction, Qubit};
use trios_passes::{
    ccz_6cnot, ccz_8cnot_linear, cswap_via_ccx, toffoli_6cnot, toffoli_8cnot_linear,
    ToffoliDecomposition,
};
use trios_topology::{Topology, TripleShape};

/// One gathered trio, recorded by the Trios router as it runs — the
/// per-Toffoli data behind the paper's Figure 6/7 x-axis ("total swap
/// distance") and its §6.3 placement discussion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrioEvent {
    /// The gate that was gathered.
    pub gate: Gate,
    /// Gather distance before routing: the minimum summed distance from
    /// two operands to the third (0 when already connected).
    pub gather_distance: usize,
    /// SWAPs this gather inserted.
    pub swaps: usize,
    /// How the trio sat after gathering.
    pub shape: TripleShape,
}

/// The product of a routing pass: a physical-qubit circuit (with explicit
/// SWAPs) plus the layouts needed to interpret and verify it.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// The routed circuit over physical qubits. Contains `swap` gates;
    /// contains `ccx` only when routing ran with `lower_toffoli = false`.
    pub circuit: Circuit,
    /// Where each logical qubit started.
    pub initial_layout: Layout,
    /// Where each logical qubit ended after all routing SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates the router inserted.
    pub swap_count: usize,
    /// One entry per three-qubit gate the trio router processed, in
    /// program order (a `cswap` contributes a second entry for its inner
    /// Toffoli; empty for the baseline pair router).
    pub trio_events: Vec<TrioEvent>,
}

impl RoutedCircuit {
    /// Two-qubit gate count after lowering SWAPs to 3 CX each — the
    /// paper's primary static metric.
    pub fn cx_cost(&self) -> usize {
        self.circuit.counts().two_qubit_equivalent()
    }

    /// Mean gather distance over the routed trios (`None` when the program
    /// had no three-qubit gates) — a one-number locality profile of the
    /// workload on this device.
    pub fn mean_gather_distance(&self) -> Option<f64> {
        if self.trio_events.is_empty() {
            return None;
        }
        Some(
            self.trio_events
                .iter()
                .map(|e| e.gather_distance as f64)
                .sum::<f64>()
                / self.trio_events.len() as f64,
        )
    }
}

/// Routes a fully decomposed circuit (1- and 2-qubit gates only) with the
/// conventional per-pair strategy: this is the paper's baseline (Fig. 2a).
///
/// # Errors
///
/// Returns [`RouteError::UnsupportedGate`] if the circuit still contains a
/// 3-qubit gate, [`RouteError::CircuitTooWide`] if it does not fit the
/// device, or [`RouteError::Disconnected`] if interacting qubits cannot be
/// joined.
pub fn route_baseline(
    circuit: &Circuit,
    topology: &Topology,
    initial: Layout,
    options: &RouterOptions,
) -> Result<RoutedCircuit, RouteError> {
    Router::new(topology, initial, options, circuit)?.run(circuit, false)
}

/// Routes a Toffoli-level circuit (1-, 2-, and 3-qubit gates) with the
/// Trios strategy: Toffoli operand trios are gathered to a common
/// neighborhood as a unit, then decomposed with the placement-appropriate
/// decomposition (paper Fig. 2b and §4).
///
/// # Errors
///
/// Same conditions as [`route_baseline`] except Toffolis are supported.
pub fn route_trios(
    circuit: &Circuit,
    topology: &Topology,
    initial: Layout,
    options: &RouterOptions,
) -> Result<RoutedCircuit, RouteError> {
    Router::new(topology, initial, options, circuit)?.run(circuit, true)
}

struct Router<'a> {
    topo: &'a Topology,
    opts: &'a RouterOptions,
    layout: Layout,
    out: Circuit,
    swap_count: usize,
    rng: StdRng,
    weights: Option<HashMap<(usize, usize), f64>>,
    trio_events: Vec<TrioEvent>,
}

impl<'a> Router<'a> {
    fn new(
        topo: &'a Topology,
        initial: Layout,
        opts: &'a RouterOptions,
        circuit: &Circuit,
    ) -> Result<Self, RouteError> {
        if circuit.num_qubits() > topo.num_qubits() {
            return Err(RouteError::CircuitTooWide {
                logical: circuit.num_qubits(),
                physical: topo.num_qubits(),
            });
        }
        if initial.num_logical() != circuit.num_qubits()
            || initial.num_physical() != topo.num_qubits()
        {
            return Err(RouteError::InvalidLayout {
                reason: format!(
                    "layout is {}→{} but circuit/device are {}→{}",
                    initial.num_logical(),
                    initial.num_physical(),
                    circuit.num_qubits(),
                    topo.num_qubits()
                ),
            });
        }
        let weights = match &opts.metric {
            PathMetric::Hops => None,
            PathMetric::EdgeWeights(w) => {
                let mut map = HashMap::new();
                for (edge, weight) in topo.edges().iter().zip(w) {
                    map.insert(*edge, *weight);
                }
                Some(map)
            }
        };
        Ok(Router {
            topo,
            opts,
            layout: initial,
            out: Circuit::with_name(topo.num_qubits(), circuit.name().to_string()),
            swap_count: 0,
            rng: StdRng::seed_from_u64(opts.seed),
            weights,
            trio_events: Vec::new(),
        })
    }

    fn run(mut self, circuit: &Circuit, allow_ccx: bool) -> Result<RoutedCircuit, RouteError> {
        let initial_layout = self.layout.clone();
        let mut queue: VecDeque<Instruction> = circuit.iter().copied().collect();
        let mut index = 0usize;
        while let Some(instr) = queue.pop_front() {
            match instr.qubits().len() {
                1 => self.emit_mapped(&instr),
                2 => {
                    let (la, lb) = (instr.qubit(0).index(), instr.qubit(1).index());
                    if self.try_bridge(&instr, la, lb) {
                        index += 1;
                        continue;
                    }
                    match self.opts.lookahead {
                        Some(cfg) => self.make_adjacent_lookahead(la, lb, &queue, cfg)?,
                        None => self.make_adjacent(la, lb)?,
                    }
                    self.emit_mapped(&instr);
                }
                3 => {
                    if !allow_ccx {
                        return Err(RouteError::UnsupportedGate {
                            gate: instr.gate().name(),
                            instruction: index,
                        });
                    }
                    let expansion = self.gather_trio(&instr)?;
                    for sub in expansion.into_iter().rev() {
                        queue.push_front(sub);
                    }
                }
                _ => unreachable!("IR gates have arity 1..=3"),
            }
            index += 1;
        }
        Ok(RoutedCircuit {
            circuit: self.out,
            initial_layout,
            final_layout: self.layout,
            swap_count: self.swap_count,
            trio_events: self.trio_events,
        })
    }

    /// Emits an instruction with its logical operands mapped to their
    /// current physical homes.
    fn emit_mapped(&mut self, instr: &Instruction) {
        let mapped = instr.map_qubits(|q| Qubit::new(self.layout.physical(q.index())));
        self.out.push(mapped);
    }

    fn emit_swap(&mut self, p1: usize, p2: usize) {
        debug_assert!(self.topo.are_adjacent(p1, p2), "swap on non-edge {p1}-{p2}");
        self.out.push(Instruction::new(
            Gate::Swap,
            &[Qubit::new(p1), Qubit::new(p2)],
        ));
        self.layout.swap_physical(p1, p2);
        self.swap_count += 1;
    }

    /// Shortest physical path under the configured metric.
    fn path(&self, a: usize, b: usize) -> Result<Vec<usize>, RouteError> {
        let path = match &self.weights {
            None => self.topo.shortest_path(a, b),
            Some(w) => self
                .topo
                .shortest_path_weighted(a, b, &|x, y| *w.get(&(x.min(y), x.max(y))).unwrap_or(&1.0))
                .map(|(p, _)| p),
        };
        path.ok_or(RouteError::Disconnected { a, b })
    }

    /// Inserts SWAPs until logical qubits `la` and `lb` are physically
    /// adjacent, following the configured direction policy.
    fn make_adjacent(&mut self, la: usize, lb: usize) -> Result<(), RouteError> {
        let pa = self.layout.physical(la);
        let pb = self.layout.physical(lb);
        if self.topo.are_adjacent(pa, pb) {
            return Ok(());
        }
        let path = self.path(pa, pb)?;
        let hops = path.len() - 2; // SWAPs needed
        let first_moves = match self.opts.direction {
            DirectionPolicy::MoveFirst => hops,
            DirectionPolicy::MoveSecond => 0,
            DirectionPolicy::Stochastic => {
                if self.rng.gen_bool(0.5) {
                    hops
                } else {
                    0
                }
            }
            DirectionPolicy::MeetInMiddle => hops / 2,
        };
        // First operand walks forward to path[first_moves] …
        for i in 0..first_moves {
            self.emit_swap(path[i], path[i + 1]);
        }
        // … second operand walks backward to path[first_moves + 1].
        for i in ((first_moves + 2)..path.len()).rev() {
            self.emit_swap(path[i], path[i - 1]);
        }
        debug_assert!(self
            .topo
            .are_adjacent(self.layout.physical(la), self.layout.physical(lb)));
        Ok(())
    }

    /// Bridge shortcut: a CNOT whose operands sit at distance exactly 2 is
    /// emitted as the 4-CNOT bridge
    /// `CX(a,m)·CX(m,b)·CX(a,m)·CX(m,b) = CX(a,b)` over the middle qubit
    /// `m`, leaving the layout untouched. Returns `true` if it applied.
    ///
    /// Only plain CNOTs bridge; other two-qubit gates fall through to SWAP
    /// routing.
    fn try_bridge(&mut self, instr: &Instruction, la: usize, lb: usize) -> bool {
        if !self.opts.bridge || instr.gate() != Gate::Cx {
            return false;
        }
        let pa = self.layout.physical(la);
        let pb = self.layout.physical(lb);
        if self.topo.distance(pa, pb) != Some(2) {
            return false;
        }
        let path = match self.path(pa, pb) {
            Ok(p) => p,
            Err(_) => return false,
        };
        let m = path[1];
        let q = Qubit::new;
        for _ in 0..2 {
            self.out.push(Instruction::new(Gate::Cx, &[q(pa), q(m)]));
            self.out.push(Instruction::new(Gate::Cx, &[q(m), q(pb)]));
        }
        true
    }

    /// Lookahead variant of [`Router::make_adjacent`]: one SWAP at a time,
    /// each chosen among the moves that strictly shrink the front gate's
    /// distance, scored by a decayed sum of upcoming gate distances (the
    /// look-ahead schemes the paper cites as prior work in §3).
    ///
    /// Lookahead scoring is hop-based even under a noise-aware
    /// [`PathMetric`]; the metric still governs committed shortest-path
    /// walks elsewhere.
    fn make_adjacent_lookahead(
        &mut self,
        la: usize,
        lb: usize,
        upcoming: &VecDeque<Instruction>,
        cfg: LookaheadConfig,
    ) -> Result<(), RouteError> {
        loop {
            let pa = self.layout.physical(la);
            let pb = self.layout.physical(lb);
            if self.topo.are_adjacent(pa, pb) {
                return Ok(());
            }
            let d0 = self
                .topo
                .distance(pa, pb)
                .ok_or(RouteError::Disconnected { a: pa, b: pb })?;

            // Candidates: swaps on edges incident to either endpoint that
            // bring the pair strictly closer. Moving one endpoint along any
            // shortest path qualifies, so the set is never empty.
            let mut best: Option<(f64, (usize, usize))> = None;
            for (end, other) in [(pa, pb), (pb, pa)] {
                for &n in self.topo.neighbors(end) {
                    let d1 = match self.topo.distance(n, other) {
                        Some(d) => d,
                        None => continue,
                    };
                    if d1 + 1 != d0 {
                        continue;
                    }
                    let mut hypothetical = self.layout.clone();
                    hypothetical.swap_physical(end, n);
                    let cost =
                        d1 as f64 + cfg.weight * self.window_cost(&hypothetical, upcoming, cfg);
                    let edge = (end.min(n), end.max(n));
                    let better = match best {
                        None => true,
                        Some((bc, be)) => {
                            cost < bc - 1e-9 || ((cost - bc).abs() <= 1e-9 && edge < be)
                        }
                    };
                    if better {
                        best = Some((cost, edge));
                    }
                }
            }
            let (_, (p1, p2)) = best.expect("a distance-decreasing swap always exists");
            self.emit_swap(p1, p2);
        }
    }

    /// Decayed sum of the physical distances of the next `cfg.window`
    /// multi-qubit gates under `layout` (trios cost their gather distance).
    fn window_cost(
        &self,
        layout: &Layout,
        upcoming: &VecDeque<Instruction>,
        cfg: LookaheadConfig,
    ) -> f64 {
        let mut cost = 0.0;
        let mut weight = 1.0;
        let mut counted = 0usize;
        for instr in upcoming {
            let qs = instr.qubits();
            let d = match qs.len() {
                2 => {
                    let a = layout.physical(qs[0].index());
                    let b = layout.physical(qs[1].index());
                    self.topo.distance(a, b).unwrap_or(0).saturating_sub(1)
                }
                3 => {
                    let a = layout.physical(qs[0].index());
                    let b = layout.physical(qs[1].index());
                    let c = layout.physical(qs[2].index());
                    self.topo
                        .triple_distance(a, b, c)
                        .unwrap_or(0)
                        .saturating_sub(2)
                }
                _ => continue,
            };
            cost += weight * d as f64;
            weight *= cfg.decay;
            counted += 1;
            if counted >= cfg.window {
                break;
            }
        }
        cost
    }

    /// The Trios gather step (paper §4): pick the operand with the minimal
    /// summed distance as the destination, route the other two to be
    /// adjacent to it (with the overlap refinement), then hand back the
    /// placement-appropriate decomposition — or leave the three-qubit gate
    /// intact when `lower_toffoli` is off.
    ///
    /// Handles the full three-qubit gate set (the paper's §4 extension):
    /// `ccx` and `ccz` decompose in place; `cswap` expands into its
    /// CX-conjugated Toffoli, whose inner `ccx` re-enters this gather (by
    /// then a no-op, the trio being connected).
    fn gather_trio(&mut self, instr: &Instruction) -> Result<Vec<Instruction>, RouteError> {
        let logical: Vec<usize> = instr.qubits().iter().map(|q| q.index()).collect();
        let phys: Vec<usize> = logical.iter().map(|&l| self.layout.physical(l)).collect();
        let gather_distance = self
            .topo
            .triple_distance(phys[0], phys[1], phys[2])
            .map(|d| d.saturating_sub(2)) // 2 = already connected
            .unwrap_or(0);
        let swaps_before = self.swap_count;

        if self.topo.triple_shape(phys[0], phys[1], phys[2]) == TripleShape::Disconnected {
            let dest_phys = match instr.gate() {
                // Fredkin: gather around one of the *swapped* operands so
                // the conjugating CNOT pair lands on a coupling edge.
                Gate::Cswap => self.gather_destination(&phys[1..], &phys)?,
                _ => self.gather_destination(&phys, &phys)?,
            };
            let dest_logical = self
                .layout
                .logical(dest_phys)
                .expect("destination holds one of the trio");
            let movers: Vec<usize> = logical
                .iter()
                .copied()
                .filter(|&l| l != dest_logical)
                .collect();

            // First mover: stop on the neighbor of the destination.
            let m1 = movers[0];
            let path1 = self.path(self.layout.physical(m1), dest_phys)?;
            for i in 0..path1.len().saturating_sub(2) {
                self.emit_swap(path1[i], path1[i + 1]);
            }

            // Second mover: recompute from the updated layout. If its
            // stopping point is where the first mover now sits, stop one
            // step earlier — the first mover becomes the middle qubit
            // (saves one SWAP; paper §4).
            let m2 = movers[1];
            let path2 = self.path(self.layout.physical(m2), dest_phys)?;
            let mut swaps = path2.len().saturating_sub(2);
            if swaps > 0 && path2[path2.len() - 2] == self.layout.physical(m1) {
                swaps -= 1;
            }
            for i in 0..swaps {
                self.emit_swap(path2[i], path2[i + 1]);
            }
        }

        let shape = self.topo.triple_shape(
            self.layout.physical(logical[0]),
            self.layout.physical(logical[1]),
            self.layout.physical(logical[2]),
        );
        debug_assert_ne!(
            shape,
            TripleShape::Disconnected,
            "gather must produce a line or triangle"
        );
        self.trio_events.push(TrioEvent {
            gate: instr.gate(),
            gather_distance,
            swaps: self.swap_count - swaps_before,
            shape,
        });

        if !self.opts.lower_toffoli {
            self.emit_mapped(instr);
            return Ok(Vec::new());
        }

        // Second decomposition pass, now placement-aware. The decomposition
        // is expressed over *logical* qubits and re-mapped at emission, so
        // any SWAPs inserted for a forced-6-CNOT non-adjacent pair keep the
        // bookkeeping consistent.
        let q = Qubit::new;
        Ok(match instr.gate() {
            Gate::Ccx => {
                let (c1, c2, t) = (logical[0], logical[1], logical[2]);
                match self.opts.toffoli {
                    ToffoliDecomposition::Six => toffoli_6cnot(q(c1), q(c2), q(t)),
                    ToffoliDecomposition::Eight => {
                        let middle = self.middle_logical(shape, &logical, c2);
                        let ends: Vec<usize> =
                            logical.iter().copied().filter(|&l| l != middle).collect();
                        toffoli_8cnot_linear(q(ends[0]), q(middle), q(ends[1]), q(t))
                    }
                    ToffoliDecomposition::ConnectivityAware => match shape {
                        TripleShape::Triangle => toffoli_6cnot(q(c1), q(c2), q(t)),
                        TripleShape::Line { middle } => {
                            let middle_logical = self
                                .layout
                                .logical(middle)
                                .expect("middle of the trio holds data");
                            let ends: Vec<usize> = logical
                                .iter()
                                .copied()
                                .filter(|&l| l != middle_logical)
                                .collect();
                            toffoli_8cnot_linear(q(ends[0]), q(middle_logical), q(ends[1]), q(t))
                        }
                        TripleShape::Disconnected => unreachable!("checked above"),
                    },
                }
            }
            Gate::Ccz => {
                // CCZ is symmetric, so the placement constraint is the only
                // constraint: 6-CNOT wants a triangle, 8-CNOT wants a line
                // with the physically-middle operand in the middle role.
                let use_six = match self.opts.toffoli {
                    ToffoliDecomposition::Six => true,
                    ToffoliDecomposition::Eight => false,
                    ToffoliDecomposition::ConnectivityAware => shape == TripleShape::Triangle,
                };
                if use_six {
                    ccz_6cnot(q(logical[0]), q(logical[1]), q(logical[2]))
                } else {
                    let middle = self.middle_logical(shape, &logical, logical[1]);
                    let ends: Vec<usize> =
                        logical.iter().copied().filter(|&l| l != middle).collect();
                    ccz_8cnot_linear(q(ends[0]), q(middle), q(ends[1]))
                }
            }
            Gate::Cswap => {
                // Expand to the CX-conjugated Toffoli over logical qubits;
                // the inner ccx re-enters the gather (a no-op now) and
                // picks the placement-appropriate decomposition there.
                cswap_via_ccx(q(logical[0]), q(logical[1]), q(logical[2]))
            }
            g => unreachable!("gather_trio only sees 3-qubit gates, got {g:?}"),
        })
    }

    /// The gather destination: the candidate with the smallest summed hop
    /// distance to the other trio members (paper §4), ties toward the
    /// earlier operand.
    fn gather_destination(
        &self,
        candidates: &[usize],
        trio: &[usize],
    ) -> Result<usize, RouteError> {
        let mut best: Option<(usize, usize)> = None;
        for &cand in candidates {
            let mut sum = 0usize;
            for &other in trio.iter().filter(|&&p| p != cand) {
                sum += self
                    .topo
                    .distance(cand, other)
                    .ok_or(RouteError::Disconnected { a: cand, b: other })?;
            }
            if best.is_none_or(|(_, d)| sum < d) {
                best = Some((cand, sum));
            }
        }
        Ok(best.expect("candidate list is non-empty").0)
    }

    /// Picks the logical middle qubit for a forced 8-CNOT decomposition.
    fn middle_logical(&self, shape: TripleShape, logical: &[usize], fallback: usize) -> usize {
        match shape {
            TripleShape::Line { middle } => self
                .layout
                .logical(middle)
                .expect("middle of the trio holds data"),
            // On a triangle every qubit touches the other two; the second
            // control is as good a middle as any.
            _ => {
                let _ = logical;
                fallback
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_passes::lower_swaps;
    use trios_sim::compiled_equivalent;
    use trios_topology::{grid, johannesburg, line};

    const EPS: f64 = 1e-9;

    fn verify(original: &Circuit, routed: &RoutedCircuit) -> bool {
        let lowered = lower_swaps(&routed.circuit);
        compiled_equivalent(
            original,
            &lowered,
            &routed.initial_layout.to_mapping(),
            &routed.final_layout.to_mapping(),
            3,
            7,
            EPS,
        )
        .unwrap()
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let topo = line(3);
        let routed = route_baseline(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.len(), 3);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn distant_pair_gets_swapped_together() {
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let topo = line(5);
        let routed = route_baseline(
            &c,
            &topo,
            Layout::trivial(5, 5),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 3);
        assert!(verify(&c, &routed));
        // MoveFirst: logical 0 walked to physical 3.
        assert_eq!(routed.final_layout.physical(0), 3);
    }

    #[test]
    fn move_second_policy_moves_target() {
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let topo = line(5);
        let opts = RouterOptions {
            direction: DirectionPolicy::MoveSecond,
            ..RouterOptions::default()
        };
        let routed = route_baseline(&c, &topo, Layout::trivial(5, 5), &opts).unwrap();
        assert_eq!(routed.swap_count, 3);
        assert_eq!(routed.final_layout.physical(4), 1);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn meet_in_middle_splits_the_walk() {
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let topo = line(6);
        let opts = RouterOptions {
            direction: DirectionPolicy::MeetInMiddle,
            ..RouterOptions::default()
        };
        let routed = route_baseline(&c, &topo, Layout::trivial(6, 6), &opts).unwrap();
        assert_eq!(routed.swap_count, 4);
        assert_eq!(routed.final_layout.physical(0), 2);
        assert_eq!(routed.final_layout.physical(5), 3);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn stochastic_policy_is_seed_deterministic() {
        let mut c = Circuit::new(8);
        c.cx(0, 7).cx(1, 6).cx(2, 5);
        let topo = line(8);
        let a = route_baseline(
            &c,
            &topo,
            Layout::trivial(8, 8),
            &RouterOptions::with_seed(3),
        )
        .unwrap();
        let b = route_baseline(
            &c,
            &topo,
            Layout::trivial(8, 8),
            &RouterOptions::with_seed(3),
        )
        .unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert!(verify(&c, &a));
    }

    #[test]
    fn baseline_rejects_toffolis() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = line(3);
        let err = route_baseline(&c, &topo, Layout::trivial(3, 3), &RouterOptions::default())
            .unwrap_err();
        assert!(matches!(
            err,
            RouteError::UnsupportedGate { gate: "ccx", .. }
        ));
    }

    #[test]
    fn too_wide_circuit_is_rejected() {
        let topo = line(5);
        assert!(matches!(
            route_baseline(
                &Circuit::new(10),
                &topo,
                Layout::trivial(5, 5),
                &RouterOptions::default()
            ),
            Err(RouteError::CircuitTooWide { .. })
        ));
        // A layout whose logical width disagrees with the circuit is also
        // rejected.
        assert!(matches!(
            route_baseline(
                &Circuit::new(3),
                &topo,
                Layout::trivial(5, 5),
                &RouterOptions::default()
            ),
            Err(RouteError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn trios_gathers_distant_toffoli_on_a_line() {
        let mut c = Circuit::new(7);
        c.ccx(0, 3, 6);
        let topo = line(7);
        let opts = RouterOptions {
            lower_toffoli: false,
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(7, 7), &opts).unwrap();
        // Destination is the middle operand (logical 1 at phys 3):
        // movers 0 and 6 each travel 2 SWAPs.
        assert_eq!(routed.swap_count, 4);
        let ccx = routed
            .circuit
            .iter()
            .find(|i| i.gate() == Gate::Ccx)
            .expect("ccx preserved");
        let (a, m, b) = (
            ccx.qubit(0).index(),
            ccx.qubit(1).index(),
            ccx.qubit(2).index(),
        );
        assert_ne!(
            topo.triple_shape(a, m, b),
            TripleShape::Disconnected,
            "trio must be gathered"
        );
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_lowered_output_is_hardware_ready_after_swap_lowering() {
        let mut c = Circuit::new(7);
        c.h(0).ccx(0, 3, 6).cx(0, 1).ccx(2, 4, 5);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.circuit.counts().ccx, 0);
        let lowered = lower_swaps(&routed.circuit);
        assert!(lowered.is_hardware_lowered());
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_connectivity_aware_picks_8cnot_on_triangle_free_devices() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = johannesburg();
        let layout = Layout::from_mapping(&[0, 1, 2], 20).unwrap();
        let routed = route_trios(&c, &topo, layout, &RouterOptions::deterministic()).unwrap();
        // Adjacent line 0–1–2: no SWAPs, 8 CX (Johannesburg has no triangles).
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 8);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_forced_six_on_a_line_needs_one_extra_swap() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = line(3);
        let opts = RouterOptions {
            toffoli: ToffoliDecomposition::Six,
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(3, 3), &opts).unwrap();
        // The 6-CNOT decomposition interleaves all three qubit pairs, so on
        // a line the qubits "compete to be neighbors" (paper §3) and extra
        // SWAPs appear. The paper's conclusion: 8-CNOT wins on lines.
        assert_eq!(routed.circuit.counts().cx, 6);
        assert!(routed.swap_count >= 1);
        assert_eq!(routed.cx_cost(), 6 + 3 * routed.swap_count);
        assert!(
            routed.cx_cost() > 8,
            "forced 6-CNOT on a line must cost more than the 8-CNOT form"
        );
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_forced_eight_matches_connectivity_aware_on_lines() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = line(3);
        let opts = RouterOptions {
            toffoli: ToffoliDecomposition::Eight,
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(3, 3), &opts).unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 8);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_on_triangle_uses_6cnot() {
        use trios_topology::full;
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let topo = full(3);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 6);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn fig1_trios_beats_baseline_on_johannesburg() {
        // The paper's Figure 1 scenario: a single distant Toffoli.
        let mut toffoli_level = Circuit::new(20);
        toffoli_level.ccx(0, 1, 2);
        let decomposed =
            trios_passes::decompose_toffolis(&toffoli_level, ToffoliDecomposition::Six);
        let topo = johannesburg();
        // Qubits placed far apart, like the paper's red trio.
        let mapping: Vec<usize> = {
            let mut m: Vec<usize> = (0..20).collect();
            // logical 0 → 6, logical 1 → 17, logical 2 → 3 (Fig. 6's
            // hardest triple), displacing the identity assignment.
            m.swap(0, 6);
            m.swap(1, 17);
            m.swap(2, 3);
            m
        };
        let layout = Layout::from_mapping(&mapping, 20).unwrap();
        let opts = RouterOptions::deterministic();
        let base = route_baseline(&decomposed, &topo, layout.clone(), &opts).unwrap();
        let trios = route_trios(&toffoli_level, &topo, layout, &opts).unwrap();
        assert!(
            trios.cx_cost() < base.cx_cost(),
            "trios {} should beat baseline {}",
            trios.cx_cost(),
            base.cx_cost()
        );
        assert!(verify(&toffoli_level, &trios));
        assert!(verify(&decomposed, &base));
    }

    #[test]
    fn noise_aware_metric_detours_around_bad_edges() {
        let topo = grid(3, 2); // 0-1-2 / 3-4-5
        let mut c = Circuit::new(6);
        c.cx(0, 2);
        // Make edge (1,2) terrible so the router detours through the back
        // row. Edges are sorted; build weights aligned with them.
        let weights: Vec<f64> = topo
            .edges()
            .iter()
            .map(|&e| if e == (1, 2) { 100.0 } else { 1.0 })
            .collect();
        let opts = RouterOptions {
            metric: PathMetric::EdgeWeights(weights),
            ..RouterOptions::deterministic()
        };
        let routed = route_baseline(&c, &topo, Layout::trivial(6, 6), &opts).unwrap();
        // Detour 0→3→4→5→2 costs 3 swaps instead of 1; the router should
        // prefer it only because of the weights.
        assert!(routed.circuit.iter().all(|i| i.gate() != Gate::Swap
            || (i.qubit(0).index(), i.qubit(1).index()) != (1, 2)
                && (i.qubit(1).index(), i.qubit(0).index()) != (1, 2)));
        assert!(verify(&c, &routed));
    }

    fn lookahead_opts() -> RouterOptions {
        RouterOptions {
            lookahead: Some(LookaheadConfig::default()),
            ..RouterOptions::deterministic()
        }
    }

    #[test]
    fn lookahead_single_pair_uses_minimum_swaps() {
        // One distant gate: lookahead must match the shortest-path walk
        // exactly (distance − 1 SWAPs).
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let topo = line(6);
        let routed = route_baseline(&c, &topo, Layout::trivial(6, 6), &lookahead_opts()).unwrap();
        assert_eq!(routed.swap_count, 4);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn lookahead_adjacent_pair_is_a_noop() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let topo = line(3);
        let routed = route_baseline(&c, &topo, Layout::trivial(3, 3), &lookahead_opts()).unwrap();
        assert_eq!(routed.swap_count, 0);
    }

    #[test]
    fn lookahead_steers_toward_future_partners() {
        // Grid 3×3 (0-1-2 / 3-4-5 / 6-7-8). First gate CX(0,8) has many
        // shortest paths; the follow-up CX(0,2) makes paths through the
        // top row strictly better. The committed walk cannot see that.
        let topo = grid(3, 3);
        let mut c = Circuit::new(9);
        c.cx(0, 8).cx(0, 2);
        let look = route_baseline(&c, &topo, Layout::trivial(9, 9), &lookahead_opts()).unwrap();
        let blind = route_baseline(
            &c,
            &topo,
            Layout::trivial(9, 9),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert!(
            look.swap_count <= blind.swap_count,
            "lookahead {} should not lose to committed walk {}",
            look.swap_count,
            blind.swap_count
        );
        assert!(verify(&c, &look));
        assert!(verify(&c, &blind));
    }

    #[test]
    fn lookahead_is_deterministic() {
        let mut c = Circuit::new(8);
        c.cx(0, 7).cx(2, 6).cx(1, 5).cx(0, 4);
        let topo = grid(4, 2);
        let a = route_baseline(&c, &topo, Layout::trivial(8, 8), &lookahead_opts()).unwrap();
        let b = route_baseline(&c, &topo, Layout::trivial(8, 8), &lookahead_opts()).unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert!(verify(&c, &a));
    }

    #[test]
    fn lookahead_works_under_trios_gather() {
        // Lookahead handles the 2q traffic while trios gather the ccx.
        let mut c = Circuit::new(7);
        c.cx(0, 6).ccx(0, 3, 6).cx(0, 6);
        let topo = line(7);
        let routed = route_trios(&c, &topo, Layout::trivial(7, 7), &lookahead_opts()).unwrap();
        assert_eq!(routed.circuit.counts().three_qubit, 0);
        assert!(verify(&c, &routed));
    }

    fn bridge_opts() -> RouterOptions {
        RouterOptions {
            bridge: true,
            ..RouterOptions::deterministic()
        }
    }

    #[test]
    fn bridge_replaces_distance_two_cnot_without_moving_data() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let topo = line(3);
        let routed = route_baseline(&c, &topo, Layout::trivial(3, 3), &bridge_opts()).unwrap();
        assert_eq!(routed.swap_count, 0, "bridge must not permute the layout");
        assert_eq!(routed.circuit.counts().cx, 4);
        assert_eq!(routed.initial_layout, routed.final_layout);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn bridge_ignores_longer_distances_and_other_gates() {
        // Distance 3: falls back to SWAP routing.
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let topo = line(4);
        let routed = route_baseline(&c, &topo, Layout::trivial(4, 4), &bridge_opts()).unwrap();
        assert!(routed.swap_count > 0);
        assert!(verify(&c, &routed));
        // CZ at distance 2: no bridge identity, SWAP routing.
        let mut c = Circuit::new(3);
        c.cz(0, 2);
        let topo = line(3);
        let routed = route_baseline(&c, &topo, Layout::trivial(3, 3), &bridge_opts()).unwrap();
        assert_eq!(routed.swap_count, 1);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn bridge_wins_when_pair_interacts_once_loses_on_reuse() {
        let topo = line(3);
        // Single interaction: bridge 4 CX vs swap 3+1 = 4 CX — tie on
        // gates, but the layout stays home (observable below).
        let mut once = Circuit::new(3);
        once.cx(0, 2);
        // Repeated interaction: swapping once amortizes; bridging pays 4
        // CX every time.
        let mut thrice = Circuit::new(3);
        thrice.cx(0, 2).cx(0, 2).cx(0, 2);
        let bridged =
            route_baseline(&thrice, &topo, Layout::trivial(3, 3), &bridge_opts()).unwrap();
        let swapped = route_baseline(
            &thrice,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(bridged.cx_cost(), 12);
        assert_eq!(swapped.cx_cost(), 3 + 3, "one swap then three local CX");
        assert!(verify(&thrice, &bridged));
        assert!(verify(&thrice, &swapped));
        let _ = once;
    }

    #[test]
    fn bridge_composes_with_trios_gather() {
        let mut c = Circuit::new(5);
        c.cx(0, 2).ccx(0, 2, 4).cx(2, 4);
        let topo = line(5);
        let routed = route_trios(&c, &topo, Layout::trivial(5, 5), &bridge_opts()).unwrap();
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_routes_ccz_with_symmetric_decomposition() {
        // CCZ on a line: 8-CNOT CCZ form, no H gates, no extra SWAPs once
        // gathered.
        let mut c = Circuit::new(7);
        c.ccz(0, 3, 6);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 4, "same gather cost as a Toffoli");
        assert_eq!(routed.circuit.counts().cx, 8);
        assert_eq!(
            routed
                .circuit
                .iter()
                .filter(|i| i.gate() == Gate::H)
                .count(),
            0,
            "CCZ decomposition has no Hadamards"
        );
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_routes_ccz_on_triangle_with_6cnot() {
        use trios_topology::full;
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        let topo = full(3);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(3, 3),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.counts().cx, 6);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_routes_cswap_as_gathered_unit() {
        let mut c = Circuit::new(7);
        c.cswap(0, 3, 6);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        // Gather cost plus the CX-conjugated 8-CNOT Toffoli; the gather
        // centers on a swapped operand so the conjugating CXs are adjacent.
        assert_eq!(routed.circuit.counts().cswap, 0);
        assert_eq!(routed.circuit.counts().cx, 10);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn trios_cswap_destination_is_a_swapped_operand() {
        // Control far out on one side: the unrestricted destination rule
        // would pick the middle operand regardless of role; for Fredkin the
        // destination must be one of the swapped pair.
        let mut c = Circuit::new(9);
        c.cswap(4, 0, 8); // control sits physically between the pair
        let topo = line(9);
        let opts = RouterOptions {
            lower_toffoli: false,
            ..RouterOptions::deterministic()
        };
        let routed = route_trios(&c, &topo, Layout::trivial(9, 9), &opts).unwrap();
        let kept = routed
            .circuit
            .iter()
            .find(|i| i.gate() == Gate::Cswap)
            .expect("cswap preserved when lowering is off");
        // The physical trio must be connected.
        let (pc, pa, pb) = (
            kept.qubit(0).index(),
            kept.qubit(1).index(),
            kept.qubit(2).index(),
        );
        assert_ne!(topo.triple_shape(pc, pa, pb), TripleShape::Disconnected);
        assert!(verify(&c, &routed));
    }

    #[test]
    fn mixed_three_qubit_program_routes_and_verifies() {
        let mut c = Circuit::new(8);
        c.h(0)
            .ccx(0, 3, 6)
            .ccz(1, 4, 7)
            .cswap(2, 5, 7)
            .cx(0, 7)
            .ccz(0, 1, 2);
        let topo = grid(4, 2);
        for seed in [0u64, 1, 2] {
            let routed = route_trios(
                &c,
                &topo,
                Layout::trivial(8, 8),
                &RouterOptions::with_seed(seed),
            )
            .unwrap();
            assert_eq!(routed.circuit.counts().three_qubit, 0);
            assert!(verify(&c, &routed), "seed {seed}");
        }
    }

    #[test]
    fn trio_events_record_gather_distance_and_shape() {
        let mut c = Circuit::new(7);
        c.ccx(0, 3, 6).ccx(0, 3, 6);
        let topo = line(7);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(7, 7),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.trio_events.len(), 2);
        let first = routed.trio_events[0];
        assert_eq!(first.gate, Gate::Ccx);
        // Trivial layout 0–3–6 on a line: best destination is the middle
        // operand, summed distance 6, i.e. 4 SWAPs beyond connected.
        assert_eq!(first.gather_distance, 4);
        assert_eq!(first.swaps, 4);
        assert!(matches!(first.shape, TripleShape::Line { .. }));
        // The second Toffoli reuses the gathered placement.
        let second = routed.trio_events[1];
        assert_eq!(second.gather_distance, 0);
        assert_eq!(second.swaps, 0);
        assert!((routed.mean_gather_distance().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_routing_records_no_trio_events() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let topo = line(4);
        let routed = route_baseline(
            &c,
            &topo,
            Layout::trivial(4, 4),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert!(routed.trio_events.is_empty());
        assert_eq!(routed.mean_gather_distance(), None);
    }

    #[test]
    fn cswap_contributes_two_trio_events() {
        let mut c = Circuit::new(5);
        c.cswap(0, 2, 4);
        let topo = line(5);
        let routed = route_trios(
            &c,
            &topo,
            Layout::trivial(5, 5),
            &RouterOptions::deterministic(),
        )
        .unwrap();
        assert_eq!(routed.trio_events.len(), 2);
        assert_eq!(routed.trio_events[0].gate, Gate::Cswap);
        assert_eq!(routed.trio_events[1].gate, Gate::Ccx);
        assert_eq!(
            routed.trio_events[1].gather_distance, 0,
            "inner ccx is pre-gathered"
        );
    }

    #[test]
    fn measurements_are_mapped_to_physical_homes() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).measure(0).measure(1);
        let topo = line(4);
        let layout = Layout::from_mapping(&[2, 3], 4).unwrap();
        let routed = route_baseline(&c, &topo, layout, &RouterOptions::deterministic()).unwrap();
        let measured: Vec<usize> = routed
            .circuit
            .iter()
            .filter(|i| i.gate() == Gate::Measure)
            .map(|i| i.qubit(0).index())
            .collect();
        assert_eq!(measured, vec![2, 3]);
    }
}
