//! # trios-route — qubit mapping and routing
//!
//! The communication half of the Orchestrated Trios compiler:
//!
//! * [`Layout`] — the live logical→physical assignment that SWAPs permute.
//! * [`initial_layout`] — placement strategies (trivial / fixed / random /
//!   greedy interaction-aware).
//! * [`RoutingStrategy`] — the pluggable routing seam: one policy over the
//!   shared [`RoutingEngine`] core. [`StrategyRegistry::standard`] names
//!   the built-ins (`baseline`, `trios`, `trios-lookahead`, `trios-noise`)
//!   so the core pipeline, CLI, and benches all select routers the same
//!   way.
//! * [`route_baseline`] — the conventional pair router: requires a fully
//!   decomposed circuit and routes each distant CNOT individually. This is
//!   the paper's baseline and exhibits exactly the pathology of its
//!   Figure 1a. (A thin shim over [`DecomposeFirst`].)
//! * [`route_trios`] — the paper's contribution: Toffolis survive to the
//!   router, which gathers each operand trio to a connected neighborhood
//!   (minimum summed-distance destination, overlap-aware), then applies the
//!   placement-appropriate decomposition (6-CNOT on triangles, 8-CNOT with
//!   the correct middle on lines). (A thin shim over
//!   [`OrchestratedTrios`].)
//! * [`check_legal`] / [`verify_legal`] — the hardware-legality invariant
//!   every strategy must (and is tested to) satisfy; `verify_legal` is the
//!   strict form for finished compilations.
//!
//! # Examples
//!
//! ```
//! use trios_ir::Circuit;
//! use trios_route::{route_trios, Layout, RouterOptions};
//! use trios_topology::johannesburg;
//!
//! let mut program = Circuit::new(3);
//! program.ccx(0, 1, 2);
//!
//! let device = johannesburg();
//! let layout = Layout::from_mapping(&[6, 17, 3], 20)?; // a distant trio
//! let routed = route_trios(&program, &device, layout, &RouterOptions::deterministic())?;
//!
//! // The trio was gathered with a handful of SWAPs and decomposed with
//! // the 8-CNOT linear Toffoli (Johannesburg has no triangles).
//! assert!(routed.swap_count <= 8);
//! assert_eq!(routed.circuit.counts().cx, 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod layout;
mod legality;
mod mapper;
mod options;
mod router;
mod strategy;

pub use engine::RoutingEngine;
pub use error::RouteError;
pub use layout::Layout;
pub use legality::{check_legal, verify_legal, LegalityError, LegalityViolation, ToffoliPolicy};
pub use mapper::{initial_layout, InitialMapping};
pub use options::{DirectionPolicy, LookaheadConfig, PathMetric, RouterOptions};
pub use router::{route_baseline, route_trios, RoutedCircuit, TrioEvent};
pub use strategy::{
    DecomposeFirst, LookaheadTrios, NoiseAwareTrios, OrchestratedTrios, RoutingStrategy,
    RoutingTrace, StrategyConstructor, StrategyRegistry, NOISE_AWARE_DEFAULT_SPREAD,
};
