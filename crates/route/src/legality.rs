//! Hardware-legality checking: the invariant every routed circuit must
//! satisfy.

use std::error::Error;
use std::fmt;
use trios_ir::Circuit;
use trios_topology::{Topology, TripleShape};

/// A violation of hardware constraints found by [`check_legal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityViolation {
    /// A two-qubit gate spans a non-edge.
    NonAdjacentPair {
        /// Index of the instruction.
        instruction: usize,
        /// First physical operand.
        a: usize,
        /// Second physical operand.
        b: usize,
    },
    /// A Toffoli sits on a triple that is neither a line nor a triangle.
    ScatteredTrio {
        /// Index of the instruction.
        instruction: usize,
    },
    /// A Toffoli was present although the check was asked to forbid them.
    ToffoliPresent {
        /// Index of the instruction.
        instruction: usize,
    },
    /// The circuit is wider than the device.
    TooWide {
        /// Circuit width.
        circuit: usize,
        /// Device width.
        device: usize,
    },
}

impl fmt::Display for LegalityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityViolation::NonAdjacentPair { instruction, a, b } => write!(
                f,
                "instruction {instruction} applies a two-qubit gate to non-adjacent qubits {a} and {b}"
            ),
            LegalityViolation::ScatteredTrio { instruction } => write!(
                f,
                "instruction {instruction} applies a Toffoli to a scattered qubit triple"
            ),
            LegalityViolation::ToffoliPresent { instruction } => write!(
                f,
                "instruction {instruction} is a Toffoli but the target requires decomposed circuits"
            ),
            LegalityViolation::TooWide { circuit, device } => write!(
                f,
                "circuit has {circuit} qubits but the device only has {device}"
            ),
        }
    }
}

impl Error for LegalityViolation {}

/// Whether [`check_legal`] accepts intact Toffolis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToffoliPolicy {
    /// Toffolis are allowed if their trio forms a line or triangle
    /// (the state between Trios routing and the second decomposition).
    AllowGathered,
    /// No Toffolis at all (final hardware circuits).
    Forbid,
}

/// Checks that every multi-qubit gate in `circuit` respects `topology`.
///
/// This is the central invariant of routing, enforced in tests and by the
/// pipelines after every compile.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_legal(
    circuit: &Circuit,
    topology: &Topology,
    policy: ToffoliPolicy,
) -> Result<(), LegalityViolation> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(LegalityViolation::TooWide {
            circuit: circuit.num_qubits(),
            device: topology.num_qubits(),
        });
    }
    for (idx, instr) in circuit.iter().enumerate() {
        let qs = instr.qubits();
        match qs.len() {
            1 => {}
            2 => {
                let (a, b) = (qs[0].index(), qs[1].index());
                if !topology.are_adjacent(a, b) {
                    return Err(LegalityViolation::NonAdjacentPair {
                        instruction: idx,
                        a,
                        b,
                    });
                }
            }
            3 => {
                debug_assert!(instr.gate().is_three_qubit());
                match policy {
                    ToffoliPolicy::Forbid => {
                        return Err(LegalityViolation::ToffoliPresent { instruction: idx })
                    }
                    ToffoliPolicy::AllowGathered => {
                        let shape =
                            topology.triple_shape(qs[0].index(), qs[1].index(), qs[2].index());
                        if shape == TripleShape::Disconnected {
                            return Err(LegalityViolation::ScatteredTrio { instruction: idx });
                        }
                    }
                }
            }
            _ => unreachable!("IR gates have arity 1..=3"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_topology::line;

    #[test]
    fn legal_circuit_passes() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).swap(1, 2).measure(2);
        assert!(check_legal(&c, &line(3), ToffoliPolicy::Forbid).is_ok());
    }

    #[test]
    fn detects_non_adjacent_pair() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        assert_eq!(
            check_legal(&c, &line(3), ToffoliPolicy::Forbid),
            Err(LegalityViolation::NonAdjacentPair {
                instruction: 0,
                a: 0,
                b: 2
            })
        );
    }

    #[test]
    fn toffoli_policy() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert!(check_legal(&c, &line(3), ToffoliPolicy::AllowGathered).is_ok());
        assert!(matches!(
            check_legal(&c, &line(3), ToffoliPolicy::Forbid),
            Err(LegalityViolation::ToffoliPresent { .. })
        ));
        let mut scattered = Circuit::new(5);
        scattered.ccx(0, 2, 4);
        assert!(matches!(
            check_legal(&scattered, &line(5), ToffoliPolicy::AllowGathered),
            Err(LegalityViolation::ScatteredTrio { .. })
        ));
    }

    #[test]
    fn width_check() {
        let c = Circuit::new(9);
        assert!(matches!(
            check_legal(&c, &line(3), ToffoliPolicy::Forbid),
            Err(LegalityViolation::TooWide { .. })
        ));
    }
}
