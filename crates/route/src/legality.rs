//! Hardware-legality checking: the invariant every routed circuit must
//! satisfy.

use std::error::Error;
use std::fmt;
use trios_ir::Circuit;
use trios_topology::{Topology, TripleShape};

/// A violation of hardware constraints found by [`check_legal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityViolation {
    /// A two-qubit gate spans a non-edge.
    NonAdjacentPair {
        /// Index of the instruction.
        instruction: usize,
        /// First physical operand.
        a: usize,
        /// Second physical operand.
        b: usize,
    },
    /// A Toffoli sits on a triple that is neither a line nor a triangle.
    ScatteredTrio {
        /// Index of the instruction.
        instruction: usize,
    },
    /// A Toffoli was present although the check was asked to forbid them.
    ToffoliPresent {
        /// Index of the instruction.
        instruction: usize,
    },
    /// The circuit is wider than the device.
    TooWide {
        /// Circuit width.
        circuit: usize,
        /// Device width.
        device: usize,
    },
    /// A gate outside the hardware set (arbitrary 1q gates, CX,
    /// measurement) survived lowering — e.g. an unlowered SWAP or CZ.
    /// Reported by [`verify_legal`] only; [`check_legal`] validates
    /// placement, not the gate basis.
    NonHardwareGate {
        /// Index of the instruction.
        instruction: usize,
    },
}

impl fmt::Display for LegalityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalityViolation::NonAdjacentPair { instruction, a, b } => write!(
                f,
                "instruction {instruction} applies a two-qubit gate to non-adjacent qubits {a} and {b}"
            ),
            LegalityViolation::ScatteredTrio { instruction } => write!(
                f,
                "instruction {instruction} applies a Toffoli to a scattered qubit triple"
            ),
            LegalityViolation::ToffoliPresent { instruction } => write!(
                f,
                "instruction {instruction} is a Toffoli but the target requires decomposed circuits"
            ),
            LegalityViolation::TooWide { circuit, device } => write!(
                f,
                "circuit has {circuit} qubits but the device only has {device}"
            ),
            LegalityViolation::NonHardwareGate { instruction } => write!(
                f,
                "instruction {instruction} uses a gate outside the hardware set \
                 (1q gates, CX, measurement)"
            ),
        }
    }
}

impl Error for LegalityViolation {}

/// Whether [`check_legal`] accepts intact Toffolis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToffoliPolicy {
    /// Toffolis are allowed if their trio forms a line or triangle
    /// (the state between Trios routing and the second decomposition).
    AllowGathered,
    /// No Toffolis at all (final hardware circuits).
    Forbid,
}

/// Checks that every multi-qubit gate in `circuit` respects `topology`.
///
/// This is the central invariant of routing, enforced in tests and by the
/// pipelines after every compile.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_legal(
    circuit: &Circuit,
    topology: &Topology,
    policy: ToffoliPolicy,
) -> Result<(), LegalityViolation> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(LegalityViolation::TooWide {
            circuit: circuit.num_qubits(),
            device: topology.num_qubits(),
        });
    }
    for (idx, instr) in circuit.iter().enumerate() {
        let qs = instr.qubits();
        match qs.len() {
            1 => {}
            2 => {
                let (a, b) = (qs[0].index(), qs[1].index());
                if !topology.are_adjacent(a, b) {
                    return Err(LegalityViolation::NonAdjacentPair {
                        instruction: idx,
                        a,
                        b,
                    });
                }
            }
            3 => {
                debug_assert!(instr.gate().is_three_qubit());
                match policy {
                    ToffoliPolicy::Forbid => {
                        return Err(LegalityViolation::ToffoliPresent { instruction: idx })
                    }
                    ToffoliPolicy::AllowGathered => {
                        let shape =
                            topology.triple_shape(qs[0].index(), qs[1].index(), qs[2].index());
                        if shape == TripleShape::Disconnected {
                            return Err(LegalityViolation::ScatteredTrio { instruction: idx });
                        }
                    }
                }
            }
            _ => unreachable!("IR gates have arity 1..=3"),
        }
    }
    Ok(())
}

/// The error type of [`verify_legal`].
///
/// Currently an alias of [`LegalityViolation`]; the name is the stable
/// part of the contract (callers match on the violation variants).
pub type LegalityError = LegalityViolation;

/// Verifies that `circuit` is fully routed and fully decomposed for
/// `topology`: it fits the device, every two-qubit gate sits on a
/// coupling edge, no three-qubit gate survives (an intact Toffoli after
/// compilation means routing never finished its job), and every gate is
/// in the hardware set (arbitrary 1q gates, CX, measurement).
///
/// This is the strict, public form of [`check_legal`] — the invariant a
/// *finished* compilation must satisfy, used by the fuzz harness and
/// available to downstream callers validating circuits from any source.
/// For the mid-pipeline state where gathered Toffolis are still intact
/// (or SWAPs not yet lowered), call [`check_legal`], which validates
/// placement only.
///
/// # Errors
///
/// Returns the first [`LegalityError`] found:
///
/// * [`LegalityViolation::TooWide`] — the circuit references qubits
///   outside the device's range,
/// * [`LegalityViolation::NonAdjacentPair`] — a two-qubit gate spans a
///   disconnected (non-edge) pair,
/// * [`LegalityViolation::ToffoliPresent`] — an unrouted three-qubit
///   gate survives,
/// * [`LegalityViolation::NonHardwareGate`] — a well-placed gate is
///   still outside the hardware basis (e.g. an unlowered SWAP or CZ).
///
/// # Examples
///
/// ```
/// use trios_ir::Circuit;
/// use trios_route::{verify_legal, LegalityViolation};
/// use trios_topology::line;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2); // 0 and 2 are not adjacent on a line
/// assert!(matches!(
///     verify_legal(&c, &line(3)),
///     Err(LegalityViolation::NonAdjacentPair { .. })
/// ));
/// ```
pub fn verify_legal(circuit: &Circuit, topology: &Topology) -> Result<(), LegalityError> {
    // Placement first (non-adjacent pairs and surviving Toffolis give
    // the more specific diagnosis), then the gate basis.
    check_legal(circuit, topology, ToffoliPolicy::Forbid)?;
    match circuit
        .iter()
        .position(|i| !i.gate().is_hardware_supported())
    {
        Some(instruction) => Err(LegalityViolation::NonHardwareGate { instruction }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_topology::line;

    #[test]
    fn legal_circuit_passes() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).swap(1, 2).measure(2);
        assert!(check_legal(&c, &line(3), ToffoliPolicy::Forbid).is_ok());
    }

    #[test]
    fn detects_non_adjacent_pair() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        assert_eq!(
            check_legal(&c, &line(3), ToffoliPolicy::Forbid),
            Err(LegalityViolation::NonAdjacentPair {
                instruction: 0,
                a: 0,
                b: 2
            })
        );
    }

    #[test]
    fn toffoli_policy() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert!(check_legal(&c, &line(3), ToffoliPolicy::AllowGathered).is_ok());
        assert!(matches!(
            check_legal(&c, &line(3), ToffoliPolicy::Forbid),
            Err(LegalityViolation::ToffoliPresent { .. })
        ));
        let mut scattered = Circuit::new(5);
        scattered.ccx(0, 2, 4);
        assert!(matches!(
            check_legal(&scattered, &line(5), ToffoliPolicy::AllowGathered),
            Err(LegalityViolation::ScatteredTrio { .. })
        ));
    }

    #[test]
    fn width_check() {
        let c = Circuit::new(9);
        assert!(matches!(
            check_legal(&c, &line(3), ToffoliPolicy::Forbid),
            Err(LegalityViolation::TooWide { .. })
        ));
    }

    #[test]
    fn verify_legal_accepts_finished_compilations() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).measure(3);
        assert_eq!(verify_legal(&c, &line(4)), Ok(()));
    }

    #[test]
    fn verify_legal_reports_disconnected_edges() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cz(0, 3); // (0,3) is not a line edge
        assert_eq!(
            verify_legal(&c, &line(4)),
            Err(LegalityViolation::NonAdjacentPair {
                instruction: 1,
                a: 0,
                b: 3
            })
        );
    }

    #[test]
    fn verify_legal_reports_out_of_range_qubits() {
        // The circuit addresses qubits 0..=6; the device only has 0..=4.
        let mut c = Circuit::new(7);
        c.cx(5, 6);
        assert_eq!(
            verify_legal(&c, &line(5)),
            Err(LegalityViolation::TooWide {
                circuit: 7,
                device: 5
            })
        );
    }

    #[test]
    fn verify_legal_reports_unrouted_three_qubit_gates() {
        // Even a perfectly gathered trio fails: a finished compilation
        // has no three-qubit gates left at all.
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_eq!(
            verify_legal(&c, &line(3)),
            Err(LegalityViolation::ToffoliPresent { instruction: 0 })
        );
    }

    #[test]
    fn verify_legal_reports_unlowered_hardware_gates() {
        // A SWAP (or CZ) on a perfectly good edge passes placement but
        // is not in the hardware basis: a finished compilation must have
        // lowered it.
        let mut c = Circuit::new(3);
        c.cx(0, 1).swap(1, 2);
        assert_eq!(
            verify_legal(&c, &line(3)),
            Err(LegalityViolation::NonHardwareGate { instruction: 1 })
        );
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        assert!(matches!(
            verify_legal(&c, &line(2)),
            Err(LegalityViolation::NonHardwareGate { instruction: 0 })
        ));
        // check_legal stays placement-only: the same circuits pass it.
        let mut swaps = Circuit::new(3);
        swaps.cx(0, 1).swap(1, 2);
        assert!(check_legal(&swaps, &line(3), ToffoliPolicy::Forbid).is_ok());
    }

    #[test]
    fn violations_render_their_coordinates() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let err = verify_legal(&c, &line(3)).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("instruction 0"), "{text}");
        assert!(text.contains('2'), "{text}");
    }
}
