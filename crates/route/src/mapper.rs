//! Initial mapping (placement) strategies.

use crate::{Layout, RouteError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use trios_ir::{Circuit, Gate};
use trios_topology::Topology;

/// How logical qubits are initially placed on the device.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialMapping {
    /// Logical `l` on physical `l`. The paper fixes the mapping for its
    /// single-Toffoli experiments "to force routing to occur".
    Trivial,
    /// An explicit assignment `mapping[l] = p`.
    Fixed(Vec<usize>),
    /// A seeded random placement (used to sample the paper's random
    /// triplets).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Greedy interaction-aware placement: frequently interacting logical
    /// qubits are placed close together. Toffolis count as their 6-CNOT
    /// equivalent — 2 interactions per qubit pair (paper §4: "the mapper
    /// can simply treat the non-decomposed Toffoli as it would the
    /// equivalent 6 CNOTs").
    GreedyInteraction,
    /// Noise-aware greedy placement (paper §4's noise-aware extension, in
    /// the style of Murali et al.): identical to
    /// [`InitialMapping::GreedyInteraction`] but distances are measured in
    /// `−log(1 − e)` per edge, so hot pairs land on *reliable* couplers,
    /// not merely close ones.
    ///
    /// `edge_errors` holds one two-qubit error rate per topology edge, in
    /// the same order as `Topology::edges()`.
    NoiseAware {
        /// Per-edge two-qubit error rates, aligned with `Topology::edges()`.
        edge_errors: Vec<f64>,
    },
}

/// Builds the initial [`Layout`] for `circuit` on `topology`.
///
/// # Errors
///
/// Returns [`RouteError::CircuitTooWide`] if the circuit does not fit, or
/// [`RouteError::InvalidLayout`] for a malformed [`InitialMapping::Fixed`].
pub fn initial_layout(
    circuit: &Circuit,
    topology: &Topology,
    mapping: &InitialMapping,
) -> Result<Layout, RouteError> {
    let n_log = circuit.num_qubits();
    let n_phys = topology.num_qubits();
    if n_log > n_phys {
        return Err(RouteError::CircuitTooWide {
            logical: n_log,
            physical: n_phys,
        });
    }
    match mapping {
        InitialMapping::Trivial => Ok(Layout::trivial(n_log, n_phys)),
        InitialMapping::Fixed(assignment) => {
            if assignment.len() != n_log {
                return Err(RouteError::InvalidLayout {
                    reason: format!(
                        "fixed mapping has {} entries for a {}-qubit circuit",
                        assignment.len(),
                        n_log
                    ),
                });
            }
            Layout::from_mapping(assignment, n_phys)
        }
        InitialMapping::Random { seed } => {
            let mut slots: Vec<usize> = (0..n_phys).collect();
            let mut rng = StdRng::seed_from_u64(*seed);
            slots.shuffle(&mut rng);
            slots.truncate(n_log);
            Layout::from_mapping(&slots, n_phys)
        }
        InitialMapping::GreedyInteraction => {
            // `cost_distance` is the hop count on explicit devices
            // (identical to the old `distance` closure) but the shuttle
            // cost |a − b| on ion-trap all-to-all devices, where every
            // hop count is 1 yet placement still decides how far ions
            // travel.
            let dist = |a: usize, b: usize| topology.cost_distance(a, b).unwrap_or(n_phys as f64);
            Ok(greedy_layout(circuit, topology, &dist))
        }
        InitialMapping::NoiseAware { edge_errors } => {
            if edge_errors.len() != topology.num_edges() {
                return Err(RouteError::InvalidLayout {
                    reason: format!(
                        "{} edge errors supplied for a topology with {} edges",
                        edge_errors.len(),
                        topology.num_edges()
                    ),
                });
            }
            let d = noise_distances(topology, edge_errors);
            let dist = |a: usize, b: usize| d[a][b];
            Ok(greedy_layout(circuit, topology, &dist))
        }
    }
}

/// All-pairs `−log(1 − e)` distances — the reliability metric of the
/// paper's noise-aware extension.
///
/// One single-source Dijkstra per row
/// ([`Topology::weighted_distances_from`]): the previous implementation
/// ran a full Dijkstra per *pair* (`O(n²)` runs for an `O(n)` job), which
/// dominated noise-aware mapping setup on larger devices.
fn noise_distances(topology: &Topology, edge_errors: &[f64]) -> Vec<Vec<f64>> {
    let weight_of: std::collections::HashMap<(usize, usize), f64> = topology
        .edges()
        .iter()
        .zip(edge_errors)
        .map(|(&e, &err)| (e, -(1.0 - err.clamp(0.0, 0.999_999)).ln()))
        .collect();
    let cost = |a: usize, b: usize| -> f64 {
        *weight_of
            .get(&(a.min(b), a.max(b)))
            .expect("edge is in the topology")
    };
    (0..topology.num_qubits())
        .map(|a| topology.weighted_distances_from(a, &cost))
        .collect()
}

/// Pairwise interaction weights of a Toffoli-level circuit. Each 2-qubit
/// gate adds 1 to its pair; each Toffoli adds 2 to each of its three pairs
/// (its 6-CNOT equivalent).
fn interaction_weights(circuit: &Circuit) -> Vec<Vec<f64>> {
    let n = circuit.num_qubits();
    let mut w = vec![vec![0.0; n]; n];
    let mut bump = |a: usize, b: usize, amount: f64| {
        w[a][b] += amount;
        w[b][a] += amount;
    };
    for instr in circuit.iter() {
        let qs = instr.qubits();
        match instr.gate() {
            Gate::Ccx | Gate::Ccz => {
                let (a, b, c) = (qs[0].index(), qs[1].index(), qs[2].index());
                bump(a, b, 2.0);
                bump(a, c, 2.0);
                bump(b, c, 2.0);
            }
            Gate::Cswap => {
                // 8-CNOT equivalent: the swapped pair carries the two
                // conjugating CNOTs on top of the inner Toffoli's share.
                let (c, a, b) = (qs[0].index(), qs[1].index(), qs[2].index());
                bump(c, a, 2.0);
                bump(c, b, 2.0);
                bump(a, b, 4.0);
            }
            _ if qs.len() == 2 => bump(qs[0].index(), qs[1].index(), 1.0),
            _ => {}
        }
    }
    w
}

/// Above this device size, placement candidates are pruned to a BFS
/// frontier around already-placed partners instead of scanning every
/// free slot. All paper-scale devices (20–27 qubits) sit far below it,
/// so the pruned and exact paths provably agree on the whole paper
/// suite (pinned by the golden routing test).
const FRONTIER_THRESHOLD: usize = 128;

/// How many free candidate slots the frontier expansion gathers before
/// stopping. Large enough that the greedy cost model, not the pruning,
/// picks the winner; small enough that kiloqubit devices never pay a
/// full O(n) scan per placement.
const FRONTIER_CANDIDATES: usize = 64;

fn greedy_layout(
    circuit: &Circuit,
    topology: &Topology,
    dist: &dyn Fn(usize, usize) -> f64,
) -> Layout {
    let n_log = circuit.num_qubits();
    let n_phys = topology.num_qubits();
    let w = interaction_weights(circuit);

    // Partner lists in ascending logical index: iterating these (instead
    // of scanning all of `assignment` per candidate) keeps each cost sum
    // accumulating in exactly the old order, so the placement — floats
    // and all — is bit-identical to the full-scan implementation.
    let partners: Vec<Vec<usize>> = (0..n_log)
        .map(|l| (0..n_log).filter(|&m| w[l][m] > 0.0).collect())
        .collect();

    // Order logical qubits: heaviest total interaction first.
    let mut order: Vec<usize> = (0..n_log).collect();
    let total = |l: usize| -> f64 { w[l].iter().sum() };
    order.sort_by(|&a, &b| {
        total(b)
            .partial_cmp(&total(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut assignment = vec![usize::MAX; n_log];
    let mut free: Vec<bool> = vec![true; n_phys];
    let mut candidates: Vec<usize> = Vec::new();

    for &l in &order {
        let placed: Vec<usize> = partners[l]
            .iter()
            .copied()
            .filter(|&m| assignment[m] != usize::MAX)
            .collect();

        // Candidate slots to score. Small devices (and partnerless
        // qubits, which any free slot suits equally) scan everything —
        // the original algorithm. At kiloqubit scale a full scan per
        // placement is O(n²) overall, and slots far from every placed
        // partner can never win, so expand a multi-source BFS ring
        // around the placed partners until enough free slots are found.
        candidates.clear();
        if n_phys <= FRONTIER_THRESHOLD || placed.is_empty() {
            candidates.extend((0..n_phys).filter(|&p| free[p]));
        } else {
            frontier_candidates(
                topology,
                &free,
                placed.iter().map(|&m| assignment[m]),
                &mut candidates,
            );
            if candidates.is_empty() {
                // Placed partners' component is saturated (or the graph
                // is disconnected): fall back to the exact scan.
                candidates.extend((0..n_phys).filter(|&p| free[p]));
            }
        }

        // Cost of placing l at p: sum over placed partners of
        // weight · distance. Candidates are scored in ascending order
        // with a strict `<`, so ties keep the lowest physical index —
        // the full-scan tie-break.
        let mut best_p = usize::MAX;
        let mut best_cost = f64::INFINITY;
        for &p in &candidates {
            let mut cost = 0.0;
            for &m in &placed {
                cost += w[l][m] * dist(p, assignment[m]);
            }
            // Prefer central qubits for the first placement: maximize
            // degree by subtracting a small bonus.
            cost -= 1e-3 * topology.degree(p) as f64;
            if cost < best_cost {
                best_cost = cost;
                best_p = p;
            }
        }
        assignment[l] = best_p;
        free[best_p] = false;
    }
    Layout::from_mapping(&assignment, n_phys).expect("greedy assignment is injective")
}

/// Multi-source BFS from the placed partners' slots, collecting free
/// slots ring by ring into `out` (sorted ascending) until at least
/// [`FRONTIER_CANDIDATES`] are gathered and the current ring is done.
fn frontier_candidates(
    topology: &Topology,
    free: &[bool],
    sources: impl Iterator<Item = usize>,
    out: &mut Vec<usize>,
) {
    let n_phys = topology.num_qubits();
    let mut seen = vec![false; n_phys];
    let mut ring: Vec<usize> = Vec::new();
    for p in sources {
        if !seen[p] {
            seen[p] = true;
            ring.push(p);
            if free[p] {
                out.push(p);
            }
        }
    }
    let mut next_ring: Vec<usize> = Vec::new();
    while !ring.is_empty() && out.len() < FRONTIER_CANDIDATES {
        next_ring.clear();
        for &p in &ring {
            for q in topology.neighbors(p) {
                if !seen[q] {
                    seen[q] = true;
                    next_ring.push(q);
                    if free[q] {
                        out.push(q);
                    }
                }
            }
        }
        std::mem::swap(&mut ring, &mut next_ring);
    }
    out.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use trios_topology::{johannesburg, line};

    #[test]
    fn trivial_mapping() {
        let c = Circuit::new(3);
        let topo = line(5);
        let l = initial_layout(&c, &topo, &InitialMapping::Trivial).unwrap();
        assert_eq!(l.to_mapping(), vec![0, 1, 2]);
    }

    #[test]
    fn fixed_mapping_validates_length() {
        let c = Circuit::new(3);
        let topo = line(5);
        assert!(initial_layout(&c, &topo, &InitialMapping::Fixed(vec![0, 1])).is_err());
        let l = initial_layout(&c, &topo, &InitialMapping::Fixed(vec![4, 0, 2])).unwrap();
        assert_eq!(l.physical(0), 4);
    }

    #[test]
    fn random_mapping_is_seeded() {
        let c = Circuit::new(5);
        let topo = johannesburg();
        let a = initial_layout(&c, &topo, &InitialMapping::Random { seed: 9 }).unwrap();
        let b = initial_layout(&c, &topo, &InitialMapping::Random { seed: 9 }).unwrap();
        let d = initial_layout(&c, &topo, &InitialMapping::Random { seed: 10 }).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn too_wide_is_rejected() {
        let c = Circuit::new(25);
        let topo = johannesburg();
        assert!(matches!(
            initial_layout(&c, &topo, &InitialMapping::Trivial),
            Err(RouteError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn greedy_places_interacting_qubits_adjacently() {
        // Two hot pairs (0,1) and (2,3), no cross-talk.
        let mut c = Circuit::new(4);
        for _ in 0..5 {
            c.cx(0, 1).cx(2, 3);
        }
        let topo = line(8);
        let l = initial_layout(&c, &topo, &InitialMapping::GreedyInteraction).unwrap();
        assert_eq!(topo.distance(l.physical(0), l.physical(1)), Some(1));
        assert_eq!(topo.distance(l.physical(2), l.physical(3)), Some(1));
    }

    #[test]
    fn greedy_counts_toffoli_as_six_cnots() {
        // Qubits 0,1,2 share a Toffoli; qubit 3 only has a single CX to 0.
        let mut c = Circuit::new(4);
        c.ccx(0, 1, 2).cx(0, 3);
        let topo = line(10);
        let l = initial_layout(&c, &topo, &InitialMapping::GreedyInteraction).unwrap();
        // The trio should be contiguous.
        let trio: Vec<usize> = (0..3).map(|q| l.physical(q)).collect();
        let spread = trio.iter().max().unwrap() - trio.iter().min().unwrap();
        assert!(spread <= 2, "trio spread {spread} too large: {trio:?}");
    }

    #[test]
    fn noise_aware_avoids_bad_couplers() {
        // Line of 5 with a terrible middle edge (1,2): a hot pair must be
        // placed on one side of it, never straddling it.
        let topo = line(5);
        let errors: Vec<f64> = topo
            .edges()
            .iter()
            .map(|&e| if e == (1, 2) { 0.5 } else { 0.001 })
            .collect();
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.cx(0, 1);
        }
        let l = initial_layout(
            &c,
            &topo,
            &InitialMapping::NoiseAware {
                edge_errors: errors,
            },
        )
        .unwrap();
        let (p0, p1) = (l.physical(0), l.physical(1));
        assert_eq!(topo.distance(p0, p1), Some(1), "hot pair stays adjacent");
        assert_ne!(
            (p0.min(p1), p0.max(p1)),
            (1, 2),
            "hot pair must not sit on the bad edge"
        );
    }

    #[test]
    fn noise_aware_validates_edge_count() {
        let c = Circuit::new(2);
        let topo = line(5);
        let err = initial_layout(
            &c,
            &topo,
            &InitialMapping::NoiseAware {
                edge_errors: vec![0.01; 2],
            },
        )
        .unwrap_err();
        assert!(matches!(err, RouteError::InvalidLayout { .. }));
    }

    #[test]
    fn noise_aware_with_uniform_errors_matches_greedy() {
        let mut c = Circuit::new(4);
        c.ccx(0, 1, 2).cx(0, 3).cx(2, 3);
        let topo = johannesburg();
        let uniform = vec![0.01; topo.edges().len()];
        let greedy = initial_layout(&c, &topo, &InitialMapping::GreedyInteraction).unwrap();
        let noise = initial_layout(
            &c,
            &topo,
            &InitialMapping::NoiseAware {
                edge_errors: uniform,
            },
        )
        .unwrap();
        // Uniform errors make the reliability metric a scaled hop count, so
        // both mappers make the same choices.
        assert_eq!(greedy, noise);
    }

    #[test]
    fn noise_distances_match_old_per_pair_dijkstra_on_johannesburg() {
        // Regression for the O(n²)-Dijkstra rewrite: the single-source
        // restructure must reproduce the per-pair values exactly.
        let topo = johannesburg();
        let errors: Vec<f64> = topo
            .edges()
            .iter()
            .map(|&(a, b)| 0.001 + 0.002 * ((a * 13 + b * 5) % 7) as f64)
            .collect();
        let fast = noise_distances(&topo, &errors);

        // The old implementation, verbatim: Dijkstra per pair.
        let weight_of: std::collections::HashMap<(usize, usize), f64> = topo
            .edges()
            .iter()
            .zip(&errors)
            .map(|(&e, &err)| (e, -(1.0 - err.clamp(0.0, 0.999_999)).ln()))
            .collect();
        let cost = |a: usize, b: usize| -> f64 { weight_of[&(a.min(b), a.max(b))] };
        for (a, row) in fast.iter().enumerate() {
            assert_eq!(row[a], 0.0);
            for (b, &value) in row.iter().enumerate() {
                if a == b {
                    continue;
                }
                let (_, slow) = topo.shortest_path_weighted(a, b, &cost).unwrap();
                assert_eq!(value, slow, "mismatch at ({a}, {b})");
            }
        }
    }

    #[test]
    fn interaction_weights_profile() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).cx(0, 1);
        let w = interaction_weights(&c);
        assert_eq!(w[0][1], 3.0); // 2 from the Toffoli + 1 from the CX
        assert_eq!(w[0][2], 2.0);
        assert_eq!(w[1][2], 2.0);
    }
}
