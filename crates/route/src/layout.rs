//! [`Layout`]: the bijection between logical and physical qubits that
//! routing SWAPs permute over time.

use crate::RouteError;
use std::fmt;

/// Tracks where each logical (program) qubit currently lives on the device.
///
/// A layout maps `n_logical` program qubits injectively into `n_physical ≥
/// n_logical` hardware slots. Routing updates it with
/// [`swap_physical`](Layout::swap_physical) every time a SWAP gate is
/// inserted; the pair of layouts (initial, final) is exactly what the
/// simulator needs to verify a routed circuit (see
/// `trios_sim::compiled_equivalent`).
///
/// # Examples
///
/// ```
/// use trios_route::Layout;
///
/// let mut layout = Layout::trivial(2, 4);
/// assert_eq!(layout.physical(0), 0);
/// layout.swap_physical(0, 3); // a routing SWAP moves logical 0 to slot 3
/// assert_eq!(layout.physical(0), 3);
/// assert_eq!(layout.logical(3), Some(0));
/// assert_eq!(layout.logical(0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    log_to_phys: Vec<usize>,
    phys_to_log: Vec<Option<usize>>,
}

impl Layout {
    /// The identity layout: logical `l` on physical `l`.
    ///
    /// # Panics
    ///
    /// Panics if `n_logical > n_physical`.
    pub fn trivial(n_logical: usize, n_physical: usize) -> Self {
        assert!(
            n_logical <= n_physical,
            "cannot place {n_logical} logical qubits on {n_physical} physical qubits"
        );
        let log_to_phys: Vec<usize> = (0..n_logical).collect();
        let mut phys_to_log = vec![None; n_physical];
        for (l, &p) in log_to_phys.iter().enumerate() {
            phys_to_log[p] = Some(l);
        }
        let layout = Layout {
            log_to_phys,
            phys_to_log,
        };
        layout.debug_check_bijective();
        layout
    }

    /// Builds a layout from an explicit assignment `mapping[l] = p`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::InvalidLayout`] if the mapping is not an
    /// injection into `0..n_physical`.
    pub fn from_mapping(mapping: &[usize], n_physical: usize) -> Result<Self, RouteError> {
        if mapping.len() > n_physical {
            return Err(RouteError::InvalidLayout {
                reason: format!(
                    "{} logical qubits do not fit on {} physical qubits",
                    mapping.len(),
                    n_physical
                ),
            });
        }
        let mut phys_to_log = vec![None; n_physical];
        for (l, &p) in mapping.iter().enumerate() {
            if p >= n_physical {
                return Err(RouteError::InvalidLayout {
                    reason: format!("logical {l} maps to out-of-range physical {p}"),
                });
            }
            if let Some(prev) = phys_to_log[p] {
                return Err(RouteError::InvalidLayout {
                    reason: format!("logical {prev} and {l} both map to physical {p}"),
                });
            }
            phys_to_log[p] = Some(l);
        }
        let layout = Layout {
            log_to_phys: mapping.to_vec(),
            phys_to_log,
        };
        layout.debug_check_bijective();
        Ok(layout)
    }

    /// Debug-build invariant: the two direction tables are exact inverses
    /// of each other (an injection `logical → physical` and its partial
    /// inverse). Release builds skip this entirely.
    fn debug_check_bijective(&self) {
        #[cfg(debug_assertions)]
        {
            for (l, &p) in self.log_to_phys.iter().enumerate() {
                debug_assert!(
                    p < self.phys_to_log.len(),
                    "logical {l} maps to out-of-bounds physical {p}"
                );
                debug_assert_eq!(
                    self.phys_to_log[p],
                    Some(l),
                    "physical {p} does not map back to logical {l}"
                );
            }
            let occupied = self.phys_to_log.iter().flatten().count();
            debug_assert_eq!(
                occupied,
                self.log_to_phys.len(),
                "occupied physical slots must equal the logical qubit count"
            );
        }
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.log_to_phys.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.phys_to_log.len()
    }

    /// Physical home of logical qubit `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn physical(&self, l: usize) -> usize {
        self.log_to_phys[l]
    }

    /// Logical occupant of physical slot `p`, or `None` if the slot holds
    /// no program data.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn logical(&self, p: usize) -> Option<usize> {
        self.phys_to_log[p]
    }

    /// Applies a SWAP between physical slots `p1` and `p2` (either or both
    /// may be empty).
    ///
    /// # Panics
    ///
    /// Panics if either slot is out of range.
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        debug_assert!(
            p1 < self.phys_to_log.len() && p2 < self.phys_to_log.len(),
            "swap {p1}-{p2} out of bounds for {} physical slots",
            self.phys_to_log.len()
        );
        let l1 = self.phys_to_log[p1];
        let l2 = self.phys_to_log[p2];
        self.phys_to_log[p1] = l2;
        self.phys_to_log[p2] = l1;
        if let Some(l) = l1 {
            self.log_to_phys[l] = p2;
        }
        if let Some(l) = l2 {
            self.log_to_phys[l] = p1;
        }
        self.debug_check_bijective();
    }

    /// The logical→physical assignment as a vector (`result[l] = p`), the
    /// format `trios_sim::compiled_equivalent` consumes.
    pub fn to_mapping(&self) -> Vec<usize> {
        self.log_to_phys.clone()
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layout{{")?;
        for (l, p) in self.log_to_phys.iter().enumerate() {
            if l > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q{l}→{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_is_identity() {
        let l = Layout::trivial(3, 5);
        for q in 0..3 {
            assert_eq!(l.physical(q), q);
            assert_eq!(l.logical(q), Some(q));
        }
        assert_eq!(l.logical(4), None);
        assert_eq!(l.num_logical(), 3);
        assert_eq!(l.num_physical(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn trivial_rejects_overflow() {
        Layout::trivial(6, 5);
    }

    #[test]
    fn from_mapping_validates() {
        assert!(Layout::from_mapping(&[0, 3, 1], 4).is_ok());
        assert!(Layout::from_mapping(&[0, 4], 4).is_err()); // out of range
        assert!(Layout::from_mapping(&[2, 2], 4).is_err()); // collision
        assert!(Layout::from_mapping(&[0, 1, 2], 2).is_err()); // too many
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut l = Layout::from_mapping(&[0, 2], 4).unwrap();
        l.swap_physical(2, 3); // logical 1 moves to slot 3
        assert_eq!(l.physical(1), 3);
        assert_eq!(l.logical(2), None);
        assert_eq!(l.logical(3), Some(1));
        l.swap_physical(0, 3); // logical 0 and 1 trade slots
        assert_eq!(l.physical(0), 3);
        assert_eq!(l.physical(1), 0);
    }

    #[test]
    fn swap_of_two_empty_slots_is_noop() {
        let mut l = Layout::from_mapping(&[0], 4).unwrap();
        l.swap_physical(2, 3);
        assert_eq!(l.physical(0), 0);
        assert_eq!(l.logical(2), None);
        assert_eq!(l.logical(3), None);
    }

    #[test]
    fn round_trip_invariant_under_many_swaps() {
        let mut l = Layout::trivial(4, 6);
        let swaps = [(0, 5), (2, 3), (5, 1), (4, 0), (3, 5), (1, 2)];
        for (a, b) in swaps {
            l.swap_physical(a, b);
        }
        // Bijectivity: every logical has a unique physical and vice versa.
        let mut seen = [false; 6];
        for q in 0..4 {
            let p = l.physical(q);
            assert!(!seen[p], "physical {p} assigned twice");
            seen[p] = true;
            assert_eq!(l.logical(p), Some(q));
        }
    }

    #[test]
    fn to_mapping_matches_accessors() {
        let l = Layout::from_mapping(&[4, 0, 2], 5).unwrap();
        assert_eq!(l.to_mapping(), vec![4, 0, 2]);
    }

    #[test]
    fn display_is_readable() {
        let l = Layout::from_mapping(&[1, 0], 2).unwrap();
        assert_eq!(l.to_string(), "layout{q0→1, q1→0}");
    }
}
