//! End-to-end Grover search: generate the circuit, compile it with Trios
//! for Johannesburg, simulate the **compiled physical circuit**, and
//! confirm the marked state still dominates the output distribution.
//!
//! Run with `cargo run --release --example grover_end_to_end`.

use orchestrated_trios::benchmarks::grovers;
use orchestrated_trios::core::{compile, Calibration, PaperConfig};
use orchestrated_trios::sim::State;
use orchestrated_trios::topology::johannesburg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let marked = 0b1011usize;
    let program = grovers(4, marked); // 4 data qubits + 1 clean ancilla
    let device = johannesburg();

    println!(
        "Grover search for |{marked:04b}⟩: {} qubits, {} Toffolis",
        program.num_qubits(),
        program.counts().ccx
    );

    for config in [PaperConfig::QiskitBaseline, PaperConfig::Trios] {
        let compiled = compile(&program, &device, &config.to_options(0))?;

        // Simulate the physical circuit and read the data qubits through
        // the final layout.
        let state = State::run(&compiled.circuit)?;
        let final_map = compiled.final_layout.to_mapping();
        let data_homes: Vec<usize> = (0..4).map(|l| final_map[l]).collect();
        let p_marked = state.marginal_probability(&data_homes, marked);

        // Mirror the paper's methodology (§5.1: "8192 trials"): sample
        // shots from the compiled circuit's output distribution and count
        // how often the marked element is read out on the data qubits.
        let counts = state.sample_counts(8192, 1);
        let hits: usize = counts
            .iter()
            .filter(|(outcome, _)| {
                data_homes
                    .iter()
                    .enumerate()
                    .all(|(k, &q)| (*outcome >> q) & 1 == (marked >> k) & 1)
            })
            .map(|(_, n)| n)
            .sum();

        let cal = Calibration::near_future();
        println!("\n{}:", config.label());
        println!(
            "  two-qubit gates:       {}",
            compiled.stats.two_qubit_gates
        );
        println!("  ideal P(marked):       {:.1}%", 100.0 * p_marked);
        println!(
            "  sampled (8192 shots):  {:.1}%",
            100.0 * hits as f64 / 8192.0
        );
        println!(
            "  est. success (noisy):  {:.2}%",
            100.0 * compiled.estimate_success(&cal).probability() * p_marked
        );
        assert!(
            p_marked > 0.9,
            "compiled Grover must still amplify the marked state"
        );
    }
    println!("\nboth pipelines preserve semantics; Trios does it with fewer gates");
    Ok(())
}
