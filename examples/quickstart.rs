//! Quickstart: compile a Toffoli-containing program for IBM Johannesburg
//! with the conventional pipeline and with Orchestrated Trios, and compare.
//!
//! Run with `cargo run --release --example quickstart`.

use orchestrated_trios::core::{compile, Calibration, PaperConfig};
use orchestrated_trios::ir::Circuit;
use orchestrated_trios::topology::johannesburg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small program: prepare |110⟩ on three qubits, apply a Toffoli, and
    // measure — the paper's single-Toffoli experiment (§5.1).
    let mut program = Circuit::with_name(3, "quickstart");
    program.x(0).x(1).ccx(0, 1, 2);
    program.measure(0).measure(1).measure(2);

    let device = johannesburg();
    let calibration = Calibration::johannesburg_2020_08_19();

    println!("program:\n{program}");
    println!("device: {device}\n");

    for config in [PaperConfig::QiskitBaseline, PaperConfig::Trios] {
        let compiled = compile(&program, &device, &config.to_options(0))?;
        let estimate = compiled.estimate_success(&calibration);
        println!("{}:", config.label());
        println!("  two-qubit gates: {}", compiled.stats.two_qubit_gates);
        println!("  SWAPs inserted:  {}", compiled.stats.swap_count);
        println!("  depth:           {}", compiled.stats.depth);
        println!("  duration:        {:.2} µs", compiled.stats.duration_us);
        println!("  est. success:    {}", estimate);
        println!("  final layout:    {}", compiled.final_layout);
        println!();
    }
    Ok(())
}
