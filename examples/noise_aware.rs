//! Noise-aware compilation (paper §4's noise-aware extension).
//!
//! Real devices report per-coupler error rates that scatter around the
//! average; routing data through a flaky coupler can cost more success
//! probability than a longer detour. This example samples a realistic
//! per-edge error profile for Johannesburg, then compares:
//!
//! 1. hop-based Trios (the paper's main configuration), and
//! 2. noise-aware Trios — reliability-weighted mapping *and* routing.
//!
//! The success model is evaluated with the *same* noisy profile for both,
//! so the comparison isolates the compiler's noise awareness.
//!
//! Run with `cargo run --release --example noise_aware`.

use orchestrated_trios::core::{compile, Calibration, CompileOptions};
use orchestrated_trios::ir::Circuit;
use orchestrated_trios::noise::estimate_success_with_edge_errors;
use orchestrated_trios::route::{InitialMapping, PathMetric};
use orchestrated_trios::topology::johannesburg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = johannesburg();
    let calibration = Calibration::johannesburg_2020_08_19();

    // Per-coupler errors: log-uniform within 3× either side of the mean.
    let edge_errors = calibration.sampled_edge_errors(device.edges().len(), 3.0, 42);
    let worst = edge_errors.iter().cloned().fold(0.0f64, f64::max);
    let best = edge_errors.iter().cloned().fold(1.0f64, f64::min);
    println!("device: {device}");
    println!(
        "sampled per-edge 2q errors: min {:.4}, mean {:.4}, max {:.4}\n",
        best, calibration.two_qubit_error, worst
    );

    // A Toffoli-heavy program: a 4-bit Cuccaro-style majority chain.
    let mut program = Circuit::with_name(9, "majority-chain");
    for i in 0..3 {
        let (a, b, c) = (3 * i, 3 * i + 1, 3 * i + 2);
        program.cx(c, b).cx(c, a).ccx(a, b, c);
    }
    program.ccx(2, 5, 8);
    for q in 0..9 {
        program.measure(q);
    }

    let hop_based = CompileOptions::with_seed(1);
    let noise_aware = CompileOptions {
        mapping: InitialMapping::NoiseAware {
            edge_errors: edge_errors.clone(),
        },
        metric: PathMetric::from_edge_errors(&edge_errors),
        ..CompileOptions::with_seed(1)
    };

    for (label, options) in [
        ("hop-based Trios", hop_based),
        ("noise-aware Trios", noise_aware),
    ] {
        let compiled = compile(&program, &device, &options)?;
        let estimate = estimate_success_with_edge_errors(
            &compiled.circuit,
            &calibration,
            device.edges(),
            &edge_errors,
        );
        println!("{label}:");
        println!("  two-qubit gates: {}", compiled.stats.two_qubit_gates);
        println!("  est. success:    {:.4}", estimate.probability());
        println!();
    }
    println!("noise-aware placement routes the hot qubits over reliable couplers;");
    println!("with uniform errors the two configurations coincide (see tests).");
    Ok(())
}
