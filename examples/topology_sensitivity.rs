//! Sensitivity study beyond the paper's four devices: how the Trios
//! advantage changes with connectivity (line → ring → grid → clusters →
//! fully connected) and with the noise-aware routing extension.
//!
//! Run with `cargo run --release --example topology_sensitivity`.

use orchestrated_trios::benchmarks::Benchmark;
use orchestrated_trios::core::{compile, PaperConfig, PathMetric};
use orchestrated_trios::topology::{clusters, full, grid, johannesburg, line, ring, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Benchmark::CnxDirty11.build();
    let devices: Vec<Topology> = vec![
        line(20),
        ring(20),
        grid(5, 4),
        johannesburg(),
        clusters(4, 5),
        full(20),
    ];

    println!("cnx_dirty-11 two-qubit gate counts by device connectivity:");
    println!(
        "{:<22} {:>7} {:>10} {:>8} {:>10}",
        "device", "edges", "baseline", "trios", "reduction"
    );
    for topo in &devices {
        let base = compile(&program, topo, &PaperConfig::QiskitBaseline.to_options(0))?;
        let trios = compile(&program, topo, &PaperConfig::Trios.to_options(0))?;
        let reduction =
            100.0 * (1.0 - trios.stats.two_qubit_gates as f64 / base.stats.two_qubit_gates as f64);
        println!(
            "{:<22} {:>7} {:>10} {:>8} {:>9.1}%",
            topo.name(),
            topo.edges().len(),
            base.stats.two_qubit_gates,
            trios.stats.two_qubit_gates,
            reduction
        );
    }
    println!("\nexpected: sparser connectivity → larger Trios advantage;");
    println!("on the fully connected device routing is trivial and the 6-CNOT Toffoli wins.");

    // --- Noise-aware routing extension (paper §4): avoid a noisy edge.
    let topo = johannesburg();
    // Pretend edge (5,6) is 10x noisier than the rest.
    let errors: Vec<f64> = topo
        .edges()
        .iter()
        .map(|&e| if e == (5, 6) { 0.15 } else { 0.015 })
        .collect();
    let mut noisy_opts = PaperConfig::Trios.to_options(0);
    noisy_opts.metric = PathMetric::from_edge_errors(&errors);
    let mut plain_opts = PaperConfig::Trios.to_options(0);
    plain_opts.metric = PathMetric::Hops;

    let mut toffoli = orchestrated_trios::ir::Circuit::new(3);
    toffoli.ccx(0, 1, 2);
    let opts_with_layout = |o: &mut orchestrated_trios::core::CompileOptions| {
        o.mapping = orchestrated_trios::core::InitialMapping::Fixed(vec![0, 6, 11]);
    };
    opts_with_layout(&mut noisy_opts);
    opts_with_layout(&mut plain_opts);

    let plain = compile(&toffoli, &topo, &plain_opts)?;
    let aware = compile(&toffoli, &topo, &noisy_opts)?;
    let uses_bad_edge = |c: &orchestrated_trios::ir::Circuit| {
        c.iter().any(|i| {
            i.qubits().len() == 2 && {
                let (a, b) = (i.qubit(0).index(), i.qubit(1).index());
                (a.min(b), a.max(b)) == (5, 6)
            }
        })
    };
    println!(
        "\nnoise-aware routing: hop-metric route touches the bad edge: {}, noise-aware: {}",
        uses_bad_edge(&plain.circuit),
        uses_bad_edge(&aware.circuit)
    );
    Ok(())
}
