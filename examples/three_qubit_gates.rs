//! The §4 extension in action: Trios routing for **all** three-qubit
//! gates, not just the Toffoli.
//!
//! The paper routes `ccx` as a unit and picks its decomposition after
//! placement. The same machinery extends to:
//!
//! * **CCZ** — fully symmetric (diagonal), so the placement constraint is
//!   the *only* constraint: 6-CNOT form on a triangle, 8-CNOT form on a
//!   line with any operand in the middle, and no Hadamards at all;
//! * **Fredkin (controlled-SWAP)** — a CX-conjugated Toffoli; the router
//!   gathers around one of the *swapped* operands so the conjugating CNOT
//!   pair lands on a coupling edge.
//!
//! Run with `cargo run --release --example three_qubit_gates`.

use orchestrated_trios::core::{compile, CompileOptions, Pipeline};
use orchestrated_trios::ir::Circuit;
use orchestrated_trios::topology::johannesburg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = johannesburg();

    // One instance of each three-qubit gate, operands scattered across
    // the device by the same fixed mapping the paper uses to "force
    // routing to occur".
    type Case = (&'static str, fn(&mut Circuit));
    let cases: [Case; 3] = [
        ("toffoli (ccx)", |c| {
            c.ccx(0, 1, 2);
        }),
        ("ccz", |c| {
            c.ccz(0, 1, 2);
        }),
        ("fredkin (cswap)", |c| {
            c.cswap(0, 1, 2);
        }),
    ];

    println!("device: {device} — triangle-free, so lines are the best trios\n");
    println!(
        "{:<18} {:>10} {:>8} {:>10} {:>8} {:>8}",
        "gate", "base 2q", "swaps", "trios 2q", "swaps", "saved"
    );
    println!("{}", "-".repeat(68));
    for (name, build) in cases {
        let mut program = Circuit::new(3);
        build(&mut program);
        let place = orchestrated_trios::route::InitialMapping::Fixed(vec![6, 17, 3]);
        let mut results = Vec::new();
        for pipeline in [Pipeline::Baseline, Pipeline::Trios] {
            let options = CompileOptions {
                pipeline,
                mapping: place.clone(),
                direction: orchestrated_trios::route::DirectionPolicy::MoveFirst,
                ..CompileOptions::default()
            };
            let compiled = compile(&program, &device, &options)?;
            results.push((compiled.stats.two_qubit_gates, compiled.stats.swap_count));
        }
        let saved = 100.0 * (1.0 - results[1].0 as f64 / results[0].0 as f64);
        println!(
            "{:<18} {:>10} {:>8} {:>10} {:>8} {:>7.1}%",
            name, results[0].0, results[0].1, results[1].0, results[1].1, saved
        );
    }
    println!();
    println!("all three gates ride the same gather machinery: the paper's Toffoli");
    println!("benefit is not Toffoli-specific, it is three-qubit-structure-specific.");
    Ok(())
}
