//! Domain study: compile ripple-carry adders across the paper's four
//! device types, compare the pipelines, and verify a compiled adder still
//! adds by simulating it end-to-end.
//!
//! Run with `cargo run --release --example adder_study`.

use orchestrated_trios::benchmarks::cuccaro_adder;
use orchestrated_trios::core::{compile, Calibration, PaperConfig};
use orchestrated_trios::sim::State;
use orchestrated_trios::topology::PaperDevice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the paper's 9-bit adder across all four devices.
    let adder = cuccaro_adder(9); // 20 qubits
    let cal = Calibration::near_future();
    println!("cuccaro_adder-20 across device types (baseline vs Trios):");
    println!(
        "{:<20} {:>10} {:>10} {:>12} {:>12}",
        "device", "2q base", "2q trios", "succ base", "succ trios"
    );
    for device in PaperDevice::ALL {
        let topo = device.build();
        let base = compile(&adder, &topo, &PaperConfig::QiskitBaseline.to_options(0))?;
        let trios = compile(&adder, &topo, &PaperConfig::Trios.to_options(0))?;
        println!(
            "{:<20} {:>10} {:>10} {:>11.2}% {:>11.2}%",
            device.label(),
            base.stats.two_qubit_gates,
            trios.stats.two_qubit_gates,
            100.0 * base.estimate_success(&cal).probability(),
            100.0 * trios.estimate_success(&cal).probability(),
        );
    }

    // --- Part 2: end-to-end correctness of a compiled adder.
    // Compile a 3-bit adder (8 qubits) for Johannesburg and simulate the
    // *compiled physical circuit*: 5 + 2 must still be 7.
    let small = cuccaro_adder(3);
    let topo = PaperDevice::Johannesburg.build();
    let compiled = compile(&small, &topo, &PaperConfig::Trios.to_options(1))?;
    let (a_val, b_val) = (5usize, 2usize);

    // Prepare |a, b⟩ through the initial layout.
    let n_phys = compiled.circuit.num_qubits();
    let mapping = compiled.initial_layout.to_mapping();
    let mut input = 0usize;
    for bit in 0..3 {
        if (a_val >> bit) & 1 == 1 {
            input |= 1 << mapping[1 + bit]; // register a = logical 1..=3
        }
        if (b_val >> bit) & 1 == 1 {
            input |= 1 << mapping[4 + bit]; // register b = logical 4..=6
        }
    }
    let mut state = State::basis(n_phys, input)?;
    state.apply_circuit(&compiled.circuit)?;

    // Read the sum back through the final layout.
    let final_map = compiled.final_layout.to_mapping();
    let sum_qubits: Vec<usize> = (0..3).map(|bit| final_map[4 + bit]).collect();
    let mut sum = 0usize;
    for (bit, &pq) in sum_qubits.iter().enumerate() {
        if state.marginal_probability(&[pq], 1) > 0.5 {
            sum |= 1 << bit;
        }
    }
    println!("\ncompiled 3-bit adder on Johannesburg: {a_val} + {b_val} = {sum}");
    assert_eq!(sum, a_val + b_val, "compiled adder must still add");
    println!("verified: the physical circuit computes the same sum as the logical program");
    Ok(())
}
