//! The paper's Figure 1 walkthrough: route one Toffoli between three
//! distant Johannesburg qubits with the baseline pair router and with the
//! Trios trio router, showing the inserted SWAPs and the gathered trio.
//!
//! Run with `cargo run --release --example single_toffoli`.

use orchestrated_trios::ir::{Circuit, Gate};
use orchestrated_trios::passes::{decompose_toffolis, SixCnotDecomposition};
use orchestrated_trios::route::{route_baseline, route_trios, Layout, RouterOptions};
use orchestrated_trios::topology::{johannesburg, GridEmbedding};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = johannesburg();
    // The hardest triple of the paper's Figure 6/7: qubits 6, 17, 3.
    let triple = [6usize, 17, 3];
    let layout = Layout::from_mapping(&triple, 20)?;

    let mut program = Circuit::with_name(3, "fig1-toffoli");
    program.ccx(0, 1, 2);

    println!(
        "Toffoli on Johannesburg qubits {triple:?} (gather distance {})",
        device
            .triple_distance(triple[0], triple[1], triple[2])
            .unwrap()
    );
    println!();
    println!("{}", GridEmbedding::johannesburg().render(&device, &triple));

    // --- Baseline: decompose first, then route each CNOT individually.
    let decomposed = decompose_toffolis(&program, &SixCnotDecomposition);
    let base = route_baseline(
        &decomposed,
        &device,
        layout.clone(),
        &RouterOptions::with_seed(0),
    )?;
    println!(
        "baseline (decompose-first): {} SWAPs = {} extra CNOTs, {} CNOTs total",
        base.swap_count,
        3 * base.swap_count,
        base.cx_cost()
    );
    print_swaps(&base.circuit);

    // --- Trios: gather the trio first, decompose second.
    let opts = RouterOptions {
        lower_toffoli: false, // keep the ccx visible for the demo
        ..RouterOptions::with_seed(0)
    };
    let trios = route_trios(&program, &device, layout, &opts)?;
    println!(
        "\ntrios (route-then-decompose): {} SWAPs, gathered trio shown below",
        trios.swap_count
    );
    print_swaps(&trios.circuit);
    for instr in trios.circuit.iter() {
        if instr.gate() == Gate::Ccx {
            let (a, b, t) = (
                instr.qubit(0).index(),
                instr.qubit(1).index(),
                instr.qubit(2).index(),
            );
            println!(
                "  toffoli lands on physical ({a}, {b}, {t}) — shape: {:?}",
                device.triple_shape(a, b, t)
            );
            println!();
            println!(
                "{}",
                GridEmbedding::johannesburg().render(&device, &[a, b, t])
            );
        }
    }
    println!(
        "\nwith the 8-CNOT decomposition, Trios totals {} CNOTs (vs {} baseline)",
        3 * trios.swap_count + 8,
        base.cx_cost()
    );
    println!(
        "paper's Figure 1 reports 16 SWAPs (48 CNOTs) for Qiskit vs 7 SWAPs (21 CNOTs) for Trios"
    );
    Ok(())
}

fn print_swaps(circuit: &Circuit) {
    let swaps: Vec<String> = circuit
        .iter()
        .filter(|i| i.gate() == Gate::Swap)
        .map(|i| format!("{}-{}", i.qubit(0).index(), i.qubit(1).index()))
        .collect();
    println!("  swap sequence: {}", swaps.join(", "));
}
