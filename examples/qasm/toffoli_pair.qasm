OPENQASM 2.0;
include "qelib1.inc";
// Two overlapping Toffolis: exercises the trio router's gather step.
qreg q[5];
h q[0];
h q[1];
ccx q[0], q[1], q[2];
ccx q[2], q[3], q[4];
