OPENQASM 2.0;
include "qelib1.inc";
// MAJ block of the Cuccaro ripple-carry adder (paper Table 1 family).
qreg q[3];
cx q[2], q[1];
cx q[2], q[0];
ccx q[0], q[1], q[2];
