OPENQASM 2.0;
include "qelib1.inc";
// Controlled-SWAP: routed as a trio like the Toffoli (paper section 4).
qreg q[3];
h q[0];
cswap q[0], q[1], q[2];
