OPENQASM 2.0;
include "qelib1.inc";
// 4-qubit GHZ state via a CNOT ladder.
qreg q[4];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
