//! Validates the paper's analytic success model (§2.6) against Monte
//! Carlo trajectory simulation of the compiled circuit.
//!
//! Two checks:
//!
//! 1. **Gate-error arithmetic** — with decoherence off, the fraction of
//!    error-free Monte Carlo trajectories is a binomial estimator of the
//!    model's `p_gates` product. The two must agree to sampling error.
//! 2. **The "close upper bound" claim** — the paper's coherence factor
//!    uses a single whole-program Δ, while real decoherence acts per
//!    qubit. Full trajectory noise therefore lands *below* the analytic
//!    estimate: the model is optimistic, exactly as §2.6 states.
//!
//! Both comparisons favour the same conclusion the paper draws from the
//! model: Trios' gate-count reduction translates into higher success.
//!
//! Run with `cargo run --release --example montecarlo_validation`.

use orchestrated_trios::benchmarks::Benchmark;
use orchestrated_trios::core::{compile, Calibration, PaperConfig};
use orchestrated_trios::noise::{estimate_success, monte_carlo_fidelity, MonteCarloOptions};
use orchestrated_trios::topology::line;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small Toffoli-dense benchmark on a 6-qubit line: the physical
    // register stays small enough for thousands of statevector shots.
    let program = Benchmark::CnxInplace4.build();
    let device = line(6);
    let calibration = Calibration::near_future(); // the paper's 20× point

    println!("benchmark: {} on {device}", program.name());
    println!("calibration: Johannesburg 2020-08-19, gate errors improved 20x\n");
    println!(
        "{:<20} {:>6} | {:>9} {:>12} | {:>9} {:>12}",
        "config", "2q", "p_gates", "mc err-free", "analytic", "mc fidelity"
    );
    println!("{}", "-".repeat(78));

    for config in [PaperConfig::QiskitBaseline, PaperConfig::Trios] {
        let compiled = compile(&program, &device, &config.to_options(0))?;
        let analytic = estimate_success(&compiled.circuit, &calibration);

        let gates_only = monte_carlo_fidelity(
            &compiled.circuit,
            &calibration,
            MonteCarloOptions {
                shots: 2000,
                seed: 1,
                gate_errors: true,
                decoherence: false,
            },
        )?;
        let full = monte_carlo_fidelity(
            &compiled.circuit,
            &calibration,
            MonteCarloOptions {
                shots: 2000,
                seed: 2,
                gate_errors: true,
                decoherence: true,
            },
        )?;
        println!(
            "{:<20} {:>6} | {:>9.4} {:>12.4} | {:>9.4} {:>12.4}",
            config.label(),
            compiled.stats.two_qubit_gates,
            analytic.p_gates,
            gates_only.error_free_fraction(),
            analytic.p_gates * analytic.p_coherence,
            full.mean_fidelity,
        );
    }
    println!();
    println!("check 1: p_gates ≈ mc err-free (binomial agreement, decoherence off)");
    println!("check 2: analytic ≥ mc fidelity — the model's single whole-program Δ");
    println!("         is optimistic versus per-qubit decoherence (§2.6 'upper bound')");
    println!("and on every column, Trios beats the baseline.");
    Ok(())
}
